//! Deterministic synthetic dataset generators.
//!
//! The paper evaluates on SIFT1M (128-d local image descriptors) and GIST1M
//! (960-d global image descriptors). Those files are not redistributable
//! here, so this module provides *shape-preserving* stand-ins:
//!
//! - [`sift_like`]: 128-d Gaussian-mixture vectors with SIFT's value range
//!   (non-negative, clipped to `[0, 255]`) and strong clusteredness.
//! - [`gist_like`]: 960-d Gaussian-mixture vectors in `[0, 1]` with gentler
//!   clusters, mimicking GIST's dense global descriptors.
//!
//! What matters for reproducing the paper's behaviour is (a) the
//! dimensionality (it fixes bytes-per-vector and distance cost), (b) the
//! clusteredness (it makes partition-limited search meaningful: recall < 1
//! with few partitions probed, rising with fan-out), and (c) determinism.
//! All generators take an explicit seed and are reproducible across runs
//! and platforms.
//!
//! Real SIFT1M/GIST1M drop in through [`crate::io::read_fvecs`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, Error, Result};

/// Standard normal sample via Box–Muller (rand itself ships no Gaussian
/// distribution, and this avoids a `rand_distr` dependency).
fn gauss(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Uniformly distributed vectors in `[lo, hi)^dim`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `dim == 0`, `n == 0`, or
/// `lo >= hi`.
///
/// ```rust
/// let ds = vecsim::gen::uniform(8, 100, -1.0, 1.0, 42)?;
/// assert_eq!(ds.len(), 100);
/// assert!(ds.iter().all(|v| v.iter().all(|&x| (-1.0..1.0).contains(&x))));
/// # Ok::<(), vecsim::Error>(())
/// ```
pub fn uniform(dim: usize, n: usize, lo: f32, hi: f32, seed: u64) -> Result<Dataset> {
    if dim == 0 || n == 0 {
        return Err(Error::InvalidParameter(
            "dim and n must be non-zero".into(),
        ));
    }
    if lo >= hi {
        return Err(Error::InvalidParameter(format!(
            "uniform range is empty: lo={lo} >= hi={hi}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(dim * n);
    for _ in 0..dim * n {
        data.push(rng.gen_range(lo..hi));
    }
    Dataset::from_flat(dim, data)
}

/// Configuration for a Gaussian-mixture dataset.
///
/// Build one with [`GaussianMixture::new`], adjust the knobs, then call
/// [`GaussianMixture::generate`].
///
/// # Example
///
/// ```rust
/// use vecsim::gen::GaussianMixture;
///
/// let (ds, labels) = GaussianMixture::new(16, 4)
///     .cluster_std(0.1)
///     .center_range(0.0, 1.0)
///     .generate(200, 99)?;
/// assert_eq!(ds.len(), 200);
/// assert_eq!(labels.len(), 200);
/// assert!(labels.iter().all(|&l| l < 4));
/// # Ok::<(), vecsim::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    dim: usize,
    clusters: usize,
    cluster_std: f64,
    center_lo: f64,
    center_hi: f64,
    clamp: Option<(f32, f32)>,
    skew: f64,
}

impl GaussianMixture {
    /// A mixture of `clusters` isotropic Gaussians in `dim` dimensions.
    pub fn new(dim: usize, clusters: usize) -> Self {
        GaussianMixture {
            dim,
            clusters,
            cluster_std: 1.0,
            center_lo: 0.0,
            center_hi: 10.0,
            clamp: None,
            skew: 0.0,
        }
    }

    /// Per-dimension standard deviation within a cluster.
    pub fn cluster_std(&mut self, std: f64) -> &mut Self {
        self.cluster_std = std;
        self
    }

    /// Range the cluster centers are drawn from (uniform per dimension).
    pub fn center_range(&mut self, lo: f64, hi: f64) -> &mut Self {
        self.center_lo = lo;
        self.center_hi = hi;
        self
    }

    /// Clamps every generated component into `[lo, hi]` (e.g. SIFT's
    /// `[0, 255]`).
    pub fn clamp(&mut self, lo: f32, hi: f32) -> &mut Self {
        self.clamp = Some((lo, hi));
        self
    }

    /// Cluster-size skew. `0.0` gives equal-probability clusters; larger
    /// values weight cluster `i` proportionally to `(i + 1)^-skew`,
    /// producing the imbalanced partition populations real corpora show.
    pub fn skew(&mut self, skew: f64) -> &mut Self {
        self.skew = skew;
        self
    }

    /// Generates `n` vectors. Returns the dataset together with the true
    /// cluster label of every vector (handy for partitioning sanity tests).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero `dim`, `clusters`,
    /// `n`, a non-positive `cluster_std`, or an empty center range.
    pub fn generate(&self, n: usize, seed: u64) -> Result<(Dataset, Vec<u32>)> {
        if self.dim == 0 || self.clusters == 0 || n == 0 {
            return Err(Error::InvalidParameter(
                "dim, clusters and n must be non-zero".into(),
            ));
        }
        if self.cluster_std <= 0.0 {
            return Err(Error::InvalidParameter(
                "cluster_std must be positive".into(),
            ));
        }
        if self.center_lo >= self.center_hi {
            return Err(Error::InvalidParameter("center range is empty".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);

        // Cluster centers.
        let mut centers = Vec::with_capacity(self.clusters * self.dim);
        for _ in 0..self.clusters * self.dim {
            centers.push(rng.gen_range(self.center_lo..self.center_hi));
        }

        // Cumulative cluster weights (zipf-ish when skewed).
        let weights: Vec<f64> = (0..self.clusters)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(self.clusters);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }

        let mut data = Vec::with_capacity(n * self.dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let r: f64 = rng.gen();
            let c = cumulative
                .iter()
                .position(|&cw| r <= cw)
                .unwrap_or(self.clusters - 1);
            labels.push(c as u32);
            let center = &centers[c * self.dim..(c + 1) * self.dim];
            for &mu in center {
                let mut x = (mu + self.cluster_std * gauss(&mut rng)) as f32;
                if let Some((lo, hi)) = self.clamp {
                    x = x.clamp(lo, hi);
                }
                data.push(x);
            }
        }
        Ok((Dataset::from_flat(self.dim, data)?, labels))
    }
}

/// SIFT1M stand-in: 128-d clustered vectors clipped to `[0, 255]`.
///
/// Uses 100 mixture components with moderate spread and a mild size skew —
/// enough structure that probing a few d-HNSW partitions yields recall in
/// the paper's 0.8–0.9 band, rising with `efSearch` and fan-out.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `n == 0`.
pub fn sift_like(n: usize, seed: u64) -> Result<Dataset> {
    let (ds, _) = GaussianMixture::new(128, 100)
        .center_range(0.0, 255.0)
        .cluster_std(28.0)
        .clamp(0.0, 255.0)
        .skew(0.35)
        .generate(n, seed)?;
    Ok(ds)
}

/// GIST1M stand-in: 960-d clustered vectors in `[0, 1]`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `n == 0`.
pub fn gist_like(n: usize, seed: u64) -> Result<Dataset> {
    let (ds, _) = GaussianMixture::new(960, 60)
        .center_range(0.0, 1.0)
        .cluster_std(0.09)
        .clamp(0.0, 1.0)
        .skew(0.35)
        .generate(n, seed)?;
    Ok(ds)
}

/// Queries derived from dataset rows by Gaussian perturbation.
///
/// Each query is a uniformly chosen base vector plus isotropic noise of
/// standard deviation `noise_frac * data_range`, where `data_range` is the
/// global min-to-max spread of the dataset. `noise_frac` around `0.02–0.1`
/// gives queries whose true neighbours are non-trivial but findable — the
/// regime ANN benchmarks operate in.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if the dataset is empty, `n == 0`,
/// or `noise_frac` is negative.
pub fn perturbed_queries(data: &Dataset, n: usize, noise_frac: f64, seed: u64) -> Result<Dataset> {
    if data.is_empty() || n == 0 {
        return Err(Error::InvalidParameter(
            "dataset and n must be non-empty".into(),
        ));
    }
    if noise_frac < 0.0 {
        return Err(Error::InvalidParameter(
            "noise_frac must be non-negative".into(),
        ));
    }
    let flat = data.as_flat();
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &x in flat {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let range = f64::from(hi - lo).max(f64::MIN_POSITIVE);
    let sigma = noise_frac * range;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Dataset::with_capacity(data.dim(), n);
    let mut row = vec![0.0f32; data.dim()];
    for _ in 0..n {
        let base = data.get(rng.gen_range(0..data.len()));
        for (dst, &src) in row.iter_mut().zip(base) {
            *dst = (f64::from(src) + sigma * gauss(&mut rng)) as f32;
        }
        out.push(&row)?;
    }
    Ok(out)
}

/// Queries with Zipf-skewed popularity over the base vectors.
///
/// Like [`perturbed_queries`], but base vectors are drawn with probability
/// proportional to `rank^-skew` over a fixed random permutation of the
/// dataset, modelling the hot-spot query distributions real serving
/// systems see. `skew = 0.0` degenerates to the uniform case; `1.0` is
/// classic Zipf. Useful for exercising the compute-side cluster cache:
/// hot partitions stay resident, cold ones churn.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] under the same conditions as
/// [`perturbed_queries`], or when `skew` is negative.
pub fn zipf_queries(
    data: &Dataset,
    n: usize,
    noise_frac: f64,
    skew: f64,
    seed: u64,
) -> Result<Dataset> {
    if data.is_empty() || n == 0 {
        return Err(Error::InvalidParameter(
            "dataset and n must be non-empty".into(),
        ));
    }
    if noise_frac < 0.0 || skew < 0.0 {
        return Err(Error::InvalidParameter(
            "noise_frac and skew must be non-negative".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Rank -> row mapping: a random permutation so "popular" rows are not
    // correlated with generation order.
    let mut ranked: Vec<u32> = (0..data.len() as u32).collect();
    for i in (1..ranked.len()).rev() {
        let j = rng.gen_range(0..=i);
        ranked.swap(i, j);
    }
    // Cumulative Zipf weights.
    let mut cumulative = Vec::with_capacity(ranked.len());
    let mut acc = 0.0f64;
    for rank in 0..ranked.len() {
        acc += 1.0 / ((rank + 1) as f64).powf(skew);
        cumulative.push(acc);
    }
    let total = acc;

    let flat = data.as_flat();
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &x in flat {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let sigma = noise_frac * f64::from(hi - lo).max(f64::MIN_POSITIVE);

    let mut out = Dataset::with_capacity(data.dim(), n);
    let mut row = vec![0.0f32; data.dim()];
    for _ in 0..n {
        let r: f64 = rng.gen::<f64>() * total;
        let rank = cumulative.partition_point(|&c| c < r).min(ranked.len() - 1);
        let base = data.get(ranked[rank] as usize);
        for (dst, &src) in row.iter_mut().zip(base) {
            *dst = (f64::from(src) + sigma * gauss(&mut rng)) as f32;
        }
        out.push(&row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_range_and_shape() {
        let ds = uniform(4, 50, 2.0, 3.0, 1).unwrap();
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.dim(), 4);
        assert!(ds.as_flat().iter().all(|&x| (2.0..3.0).contains(&x)));
    }

    #[test]
    fn uniform_rejects_bad_parameters() {
        assert!(uniform(0, 10, 0.0, 1.0, 0).is_err());
        assert!(uniform(4, 0, 0.0, 1.0, 0).is_err());
        assert!(uniform(4, 10, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = sift_like(100, 7).unwrap();
        let b = sift_like(100, 7).unwrap();
        assert_eq!(a, b);
        let c = sift_like(100, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sift_like_shape_and_range() {
        let ds = sift_like(200, 3).unwrap();
        assert_eq!(ds.dim(), 128);
        assert_eq!(ds.len(), 200);
        assert!(ds.as_flat().iter().all(|&x| (0.0..=255.0).contains(&x)));
    }

    #[test]
    fn gist_like_shape_and_range() {
        let ds = gist_like(50, 3).unwrap();
        assert_eq!(ds.dim(), 960);
        assert!(ds.as_flat().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn mixture_labels_match_cluster_count() {
        let (ds, labels) = GaussianMixture::new(8, 5).generate(300, 11).unwrap();
        assert_eq!(ds.len(), 300);
        assert_eq!(labels.len(), 300);
        assert!(labels.iter().all(|&l| l < 5));
        // With 300 draws over 5 clusters every cluster should be hit.
        let mut seen = [false; 5];
        for &l in &labels {
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mixture_skew_produces_imbalanced_clusters() {
        let (_, labels) = GaussianMixture::new(4, 10)
            .skew(1.5)
            .generate(2_000, 21)
            .unwrap();
        let mut counts = [0usize; 10];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "skewed mixture should be head-heavy: {counts:?}"
        );
    }

    #[test]
    fn mixture_rejects_bad_parameters() {
        assert!(GaussianMixture::new(0, 4).generate(10, 0).is_err());
        assert!(GaussianMixture::new(4, 0).generate(10, 0).is_err());
        assert!(GaussianMixture::new(4, 2).generate(0, 0).is_err());
        assert!(GaussianMixture::new(4, 2)
            .cluster_std(0.0)
            .generate(10, 0)
            .is_err());
        assert!(GaussianMixture::new(4, 2)
            .center_range(1.0, 1.0)
            .generate(10, 0)
            .is_err());
    }

    #[test]
    fn perturbed_queries_stay_close_to_their_base() {
        let ds = uniform(16, 100, 0.0, 1.0, 5).unwrap();
        let qs = perturbed_queries(&ds, 20, 0.01, 6).unwrap();
        assert_eq!(qs.len(), 20);
        assert_eq!(qs.dim(), 16);
        // Every query should be much closer to *some* dataset point than
        // the typical inter-point distance.
        for q in qs.iter() {
            let best = ds
                .iter()
                .map(|v| crate::l2_sq(q, v))
                .fold(f32::INFINITY, f32::min);
            assert!(best < 0.1, "query strayed too far: {best}");
        }
    }

    #[test]
    fn perturbed_queries_rejects_bad_input() {
        let ds = uniform(4, 10, 0.0, 1.0, 5).unwrap();
        assert!(perturbed_queries(&ds, 0, 0.1, 0).is_err());
        assert!(perturbed_queries(&ds, 5, -0.1, 0).is_err());
        let empty = Dataset::new(4);
        assert!(perturbed_queries(&empty, 5, 0.1, 0).is_err());
    }

    #[test]
    fn zipf_queries_concentrate_on_few_bases() {
        let ds = uniform(4, 200, 0.0, 1.0, 5).unwrap();
        // Zero noise so each query equals its base vector exactly.
        let qs = zipf_queries(&ds, 1_000, 0.0, 1.2, 6).unwrap();
        let mut counts = std::collections::HashMap::new();
        for q in qs.iter() {
            let base = ds
                .iter()
                .position(|v| v == q)
                .expect("zero-noise query must equal a base vector");
            *counts.entry(base).or_insert(0usize) += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest base should dominate and far fewer than all 200
        // bases should appear.
        assert!(freq[0] > 50, "hottest base only {} hits", freq[0]);
        assert!(counts.len() < 150, "{} distinct bases", counts.len());
    }

    #[test]
    fn zipf_skew_zero_is_roughly_uniform() {
        let ds = uniform(4, 50, 0.0, 1.0, 7).unwrap();
        let qs = zipf_queries(&ds, 2_000, 0.0, 0.0, 8).unwrap();
        let mut counts = std::collections::HashMap::new();
        for q in qs.iter() {
            let base = ds.iter().position(|v| v == q).unwrap();
            *counts.entry(base).or_insert(0usize) += 1;
        }
        assert!(counts.len() >= 45, "only {} bases drawn", counts.len());
    }

    #[test]
    fn zipf_queries_reject_bad_input() {
        let ds = uniform(4, 10, 0.0, 1.0, 9).unwrap();
        assert!(zipf_queries(&ds, 0, 0.1, 1.0, 0).is_err());
        assert!(zipf_queries(&ds, 5, -0.1, 1.0, 0).is_err());
        assert!(zipf_queries(&ds, 5, 0.1, -1.0, 0).is_err());
    }

    #[test]
    fn gauss_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
