//! Vector-search primitives for the d-HNSW reproduction.
//!
//! This crate contains everything that is about *vectors* rather than about
//! indexes or networks:
//!
//! - [`distance`]: L2, inner-product and cosine distance kernels plus the
//!   [`Metric`] selector used across the workspace.
//! - [`dataset`]: the flat, cache-friendly [`Dataset`] container.
//! - [`gen`]: deterministic synthetic dataset generators, including the
//!   SIFT-like (128-d) and GIST-like (960-d) workloads that stand in for the
//!   paper's SIFT1M / GIST1M (see `DESIGN.md` §2 for the substitution
//!   rationale).
//! - [`ground_truth`]: exact brute-force top-k used to score recall.
//! - [`quantize`]: SQ8 scalar quantization (train/encode/decode) and the
//!   asymmetric L2 distance used to search over codes.
//! - [`recall`]: recall@k computation.
//! - [`stats`]: dataset statistics and clustering-tendency estimates.
//! - [`io`]: readers and writers for the standard `fvecs`/`ivecs`/`bvecs`
//!   formats so the real SIFT1M/GIST1M files can be dropped in when
//!   available.
//! - [`topk`]: a bounded max-heap for collecting nearest neighbours.
//!
//! # Example
//!
//! ```rust
//! use vecsim::{gen, ground_truth, recall, Metric};
//!
//! # fn main() -> Result<(), vecsim::Error> {
//! // A small SIFT-like dataset and some held-out queries.
//! let data = gen::sift_like(1_000, 7)?;
//! let queries = gen::perturbed_queries(&data, 10, 0.05, 13)?;
//!
//! // Exact top-10 ground truth.
//! let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
//!
//! // Recall of the ground truth against itself is exactly 1.0.
//! let ids: Vec<Vec<u32>> = truth
//!     .iter()
//!     .map(|n| n.iter().map(|x| x.id).collect())
//!     .collect();
//! let r = recall::mean_recall(&ids, &truth);
//! assert!((r - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod distance;
mod error;
pub mod gen;
pub mod ground_truth;
pub mod io;
pub mod quantize;
pub mod recall;
pub mod stats;
pub mod topk;

pub use dataset::Dataset;
pub use distance::{cosine_distance, dot, l2_sq, Metric};
pub use error::Error;
pub use topk::{Neighbor, TopK};

/// Convenient result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;
