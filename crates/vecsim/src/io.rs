//! Readers and writers for the TEXMEX vector file formats.
//!
//! SIFT1M and GIST1M ship in `fvecs` (float vectors), `ivecs` (integer
//! vectors, used for ground truth) and `bvecs` (byte vectors). Each record
//! is a little-endian `i32` dimensionality followed by that many components.
//! Supplying the real files makes the benchmark harness evaluate on them
//! instead of the synthetic stand-ins.
//!
//! All functions take generic readers/writers by value; pass `&mut r` to
//! keep using the reader afterwards.

use std::io::{Read, Write};

use crate::{Dataset, Error, Result};

/// Upper bound on a plausible vector dimensionality; guards against
/// misaligned or corrupt files allocating absurd buffers.
const MAX_DIM: usize = 1 << 20;

fn read_dim<R: Read>(r: &mut R) -> Result<Option<usize>> {
    let mut buf = [0u8; 4];
    match r.read_exact(&mut buf) {
        Ok(()) => {
            let d = i32::from_le_bytes(buf);
            if d <= 0 || d as usize > MAX_DIM {
                return Err(Error::InvalidFormat(format!(
                    "vector dimensionality {d} out of range"
                )));
            }
            Ok(Some(d as usize))
        }
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Reads an entire `fvecs` stream into a [`Dataset`].
///
/// # Errors
///
/// [`Error::InvalidFormat`] on non-positive or inconsistent per-record
/// dimensions or a truncated record; [`Error::Io`] on read failures.
///
/// # Example
///
/// ```rust
/// use vecsim::io::{read_fvecs, write_fvecs};
/// use vecsim::Dataset;
///
/// # fn main() -> Result<(), vecsim::Error> {
/// let ds = Dataset::from_rows(&[[1.0f32, 2.0], [3.0, 4.0]])?;
/// let mut buf = Vec::new();
/// write_fvecs(&mut buf, &ds)?;
/// let back = read_fvecs(&buf[..])?;
/// assert_eq!(back, ds);
/// # Ok(())
/// # }
/// ```
pub fn read_fvecs<R: Read>(mut r: R) -> Result<Dataset> {
    let mut ds: Option<Dataset> = None;
    while let Some(dim) = read_dim(&mut r)? {
        let mut bytes = vec![0u8; dim * 4];
        r.read_exact(&mut bytes)
            .map_err(|_| Error::InvalidFormat("truncated fvecs record".into()))?;
        let row: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        match &mut ds {
            None => ds = Some(Dataset::from_flat(dim, row)?),
            Some(d) => d.push(&row)?,
        }
    }
    Ok(ds.unwrap_or_default())
}

/// Writes a [`Dataset`] as an `fvecs` stream.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_fvecs<W: Write>(mut w: W, data: &Dataset) -> Result<()> {
    for row in data.iter() {
        w.write_all(&(row.len() as i32).to_le_bytes())?;
        for &x in row {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads an `ivecs` stream (e.g. TEXMEX ground-truth files) into rows of
/// `u32` ids.
///
/// # Errors
///
/// Same failure modes as [`read_fvecs`].
pub fn read_ivecs<R: Read>(mut r: R) -> Result<Vec<Vec<u32>>> {
    let mut out = Vec::new();
    while let Some(dim) = read_dim(&mut r)? {
        let mut bytes = vec![0u8; dim * 4];
        r.read_exact(&mut bytes)
            .map_err(|_| Error::InvalidFormat("truncated ivecs record".into()))?;
        out.push(
            bytes
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]) as u32)
                .collect(),
        );
    }
    Ok(out)
}

/// Writes rows of ids as an `ivecs` stream.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_ivecs<W: Write>(mut w: W, rows: &[Vec<u32>]) -> Result<()> {
    for row in rows {
        w.write_all(&(row.len() as i32).to_le_bytes())?;
        for &x in row {
            w.write_all(&(x as i32).to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a `bvecs` stream (byte components, as SIFT1B uses), widening each
/// component to `f32`.
///
/// # Errors
///
/// Same failure modes as [`read_fvecs`].
pub fn read_bvecs<R: Read>(mut r: R) -> Result<Dataset> {
    let mut ds: Option<Dataset> = None;
    while let Some(dim) = read_dim(&mut r)? {
        let mut bytes = vec![0u8; dim];
        r.read_exact(&mut bytes)
            .map_err(|_| Error::InvalidFormat("truncated bvecs record".into()))?;
        let row: Vec<f32> = bytes.iter().map(|&b| f32::from(b)).collect();
        match &mut ds {
            None => ds = Some(Dataset::from_flat(dim, row)?),
            Some(d) => d.push(&row)?,
        }
    }
    Ok(ds.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_round_trip() {
        let ds = Dataset::from_rows(&[[1.5f32, -2.0, 3.25], [0.0, 0.5, -0.5]]).unwrap();
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &ds).unwrap();
        assert_eq!(buf.len(), 2 * (4 + 3 * 4));
        let back = read_fvecs(&buf[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn ivecs_round_trip() {
        let rows = vec![vec![1u32, 2, 3], vec![7, 8, 9]];
        let mut buf = Vec::new();
        write_ivecs(&mut buf, &rows).unwrap();
        let back = read_ivecs(&buf[..]).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn empty_stream_gives_empty_dataset() {
        let ds = read_fvecs(&[][..]).unwrap();
        assert!(ds.is_empty());
        assert!(read_ivecs(&[][..]).unwrap().is_empty());
    }

    #[test]
    fn truncated_record_is_invalid_format() {
        // dim = 3 but only one float of payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&3i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        let err = read_fvecs(&buf[..]).unwrap_err();
        assert!(matches!(err, Error::InvalidFormat(_)), "{err}");
    }

    #[test]
    fn negative_dim_is_invalid_format() {
        let buf = (-4i32).to_le_bytes();
        assert!(matches!(
            read_fvecs(&buf[..]).unwrap_err(),
            Error::InvalidFormat(_)
        ));
    }

    #[test]
    fn absurd_dim_is_rejected_without_allocation() {
        let buf = (i32::MAX).to_le_bytes();
        assert!(matches!(
            read_fvecs(&buf[..]).unwrap_err(),
            Error::InvalidFormat(_)
        ));
    }

    #[test]
    fn inconsistent_dims_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&2i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&2.0f32.to_le_bytes());
        assert!(read_fvecs(&buf[..]).is_err());
    }

    #[test]
    fn bvecs_widens_bytes_to_f32() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2i32.to_le_bytes());
        buf.extend_from_slice(&[7u8, 255u8]);
        let ds = read_bvecs(&buf[..]).unwrap();
        assert_eq!(ds.get(0), &[7.0, 255.0]);
    }

    #[test]
    fn readers_accept_mut_references() {
        // C-RW-VALUE: a &mut reader satisfies the bound.
        let ds = Dataset::from_rows(&[[1.0f32]]).unwrap();
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &ds).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_fvecs(&mut cursor).unwrap();
        assert_eq!(back, ds);
    }
}
