//! Scalar quantization (SQ8) for compressed vector transport.
//!
//! d-HNSW's bottleneck currency is network bytes: a full-precision
//! 128-d vector costs 512 B on the wire, its SQ8 codes cost 128 B. The
//! quantizer here is the classic per-dimension affine scheme: for each
//! dimension `d` of a training set, store `min[d]` and a `scale[d]`
//! such that the value range maps onto the 256 code points, then
//! encode every component as `round((x - min) / scale)` clamped to
//! `[0, 255]`. Decoding is `min + code * scale`, so the round-trip
//! error per component is bounded by `scale / 2`.
//!
//! Search over codes uses the *asymmetric* distance: the query stays
//! in f32 and is compared against decoded code points, which loses far
//! less recall than code-to-code (symmetric) comparison. The engine
//! reranks the candidates whose approximate distances are too close to
//! call with exact full-precision reads; [`SqParams::l2_error_bound`]
//! provides the error scale those margin decisions are based on.
//!
//! # Example
//!
//! ```rust
//! use vecsim::quantize::SqParams;
//!
//! let rows: Vec<Vec<f32>> = vec![vec![0.0, 10.0], vec![1.0, 20.0]];
//! let params = SqParams::train(2, rows.iter().map(|r| r.as_slice())).unwrap();
//! let codes = params.encode(&[0.5, 15.0]);
//! let back = params.decode(&codes);
//! assert!((back[0] - 0.5).abs() <= params.scale()[0] / 2.0);
//! ```

use crate::{Error, Result};

/// Per-dimension affine quantization parameters: `code = round((x -
/// min) / scale)`, `x̂ = min + code * scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqParams {
    min: Vec<f32>,
    scale: Vec<f32>,
}

impl SqParams {
    /// Trains parameters over `rows`, each a `dim`-length slice: per
    /// dimension, `min` is the smallest observed value and `scale`
    /// spreads the observed range across the 256 code points. A
    /// constant dimension gets `scale == 0` and round-trips exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `rows` is empty and
    /// [`Error::DimensionMismatch`] when a row's length is not `dim`.
    pub fn train<'a, I>(dim: usize, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        let mut seen = 0usize;
        for row in rows {
            if row.len() != dim {
                return Err(Error::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            for d in 0..dim {
                min[d] = min[d].min(row[d]);
                max[d] = max[d].max(row[d]);
            }
            seen += 1;
        }
        if seen == 0 {
            return Err(Error::InvalidParameter(
                "quantizer training set is empty".into(),
            ));
        }
        let scale = (0..dim).map(|d| (max[d] - min[d]) / 255.0).collect();
        Ok(SqParams { min, scale })
    }

    /// Reassembles parameters from their serialized parts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the two vectors
    /// disagree in length.
    pub fn from_parts(min: Vec<f32>, scale: Vec<f32>) -> Result<Self> {
        if min.len() != scale.len() {
            return Err(Error::DimensionMismatch {
                expected: min.len(),
                got: scale.len(),
            });
        }
        Ok(SqParams { min, scale })
    }

    /// Vector dimensionality these parameters quantize.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Per-dimension minima.
    pub fn min(&self) -> &[f32] {
        &self.min
    }

    /// Per-dimension code step sizes.
    pub fn scale(&self) -> &[f32] {
        &self.scale
    }

    /// Encodes one vector into `dim` u8 codes.
    ///
    /// Values outside the trained range clamp to the boundary codes,
    /// so encoding never panics on unseen data.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()` (debug builds; release builds
    /// truncate via the zip).
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        debug_assert_eq!(v.len(), self.dim());
        v.iter()
            .zip(self.min.iter().zip(&self.scale))
            .map(|(&x, (&m, &s))| {
                if s <= 0.0 {
                    0
                } else {
                    (((x - m) / s).round()).clamp(0.0, 255.0) as u8
                }
            })
            .collect()
    }

    /// Decodes `dim` codes back into an approximate f32 vector.
    pub fn decode(&self, codes: &[u8]) -> Vec<f32> {
        debug_assert_eq!(codes.len(), self.dim());
        codes
            .iter()
            .zip(self.min.iter().zip(&self.scale))
            .map(|(&c, (&m, &s))| m + f32::from(c) * s)
            .collect()
    }

    /// Asymmetric squared-L2 distance: the f32 query against the
    /// decoded code points, without materializing the decoded vector.
    pub fn asymmetric_l2(&self, query: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(query.len(), self.dim());
        debug_assert_eq!(codes.len(), self.dim());
        let mut acc = 0.0f32;
        for d in 0..codes.len() {
            let x = self.min[d] + f32::from(codes[d]) * self.scale[d];
            let diff = query[d] - x;
            acc += diff * diff;
        }
        acc
    }

    /// Scale of the error the quantization noise adds to a squared-L2
    /// distance of (approximate) magnitude `d_hat`.
    ///
    /// Writing the true vector as `x = x̂ + e` with per-dimension noise
    /// `e_d` uniform in `[-s_d/2, s_d/2]`, the exact distance is
    /// `d = d̂ - 2⟨q - x̂, e⟩ + ‖e‖²`. The bound returned is one
    /// standard deviation of the cross term, `2·√(d̂ · E[s²]/12)`,
    /// plus the mean of the quadratic term, `dim · E[s²]/12` — the
    /// natural unit for "these two approximate distances are too close
    /// to order without exact rerank".
    pub fn l2_error_bound(&self, d_hat: f32) -> f32 {
        let dim = self.dim();
        if dim == 0 {
            return 0.0;
        }
        let mean_sq_scale =
            self.scale.iter().map(|&s| s * s).sum::<f32>() / dim as f32;
        let var_per_dim = mean_sq_scale / 12.0;
        2.0 * (d_hat.max(0.0) * var_per_dim).sqrt() + dim as f32 * var_per_dim
    }

    /// The largest per-component round-trip error these parameters can
    /// produce on in-range data: `max_d scale[d] / 2`.
    pub fn max_component_error(&self) -> f32 {
        self.scale.iter().fold(0.0f32, |a, &s| a.max(s / 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, l2_sq};

    fn trained(n: usize, seed: u64) -> (crate::Dataset, SqParams) {
        let data = gen::sift_like(n, seed).unwrap();
        let params = SqParams::train(data.dim(), data.iter()).unwrap();
        (data, params)
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let (data, params) = trained(200, 11);
        for row in data.iter() {
            let back = params.decode(&params.encode(row));
            for d in 0..row.len() {
                assert!(
                    (back[d] - row[d]).abs() <= params.scale()[d] / 2.0 + 1e-4,
                    "dim {d}: {} vs {}",
                    back[d],
                    row[d]
                );
            }
        }
    }

    #[test]
    fn constant_dimension_round_trips_exactly() {
        let rows = [[3.5f32, 1.0], [3.5, 2.0], [3.5, 3.0]];
        let params =
            SqParams::train(2, rows.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(params.scale()[0], 0.0);
        let back = params.decode(&params.encode(&rows[1]));
        assert_eq!(back[0], 3.5);
    }

    #[test]
    fn out_of_range_values_clamp_to_boundary_codes() {
        let rows = [[0.0f32], [10.0]];
        let params =
            SqParams::train(1, rows.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(params.encode(&[-5.0]), vec![0]);
        assert_eq!(params.encode(&[99.0]), vec![255]);
    }

    #[test]
    fn asymmetric_distance_matches_decode_then_exact() {
        let (data, params) = trained(50, 12);
        let q = data.get(0);
        for i in 1..10 {
            let codes = params.encode(data.get(i));
            let via_decode = l2_sq(q, &params.decode(&codes));
            let direct = params.asymmetric_l2(q, &codes);
            assert!((via_decode - direct).abs() <= 1e-2 * via_decode.max(1.0));
        }
    }

    #[test]
    fn train_rejects_degenerate_input() {
        assert!(matches!(
            SqParams::train(4, std::iter::empty()),
            Err(Error::InvalidParameter(_))
        ));
        let row = [1.0f32, 2.0];
        assert!(SqParams::train(3, [row.as_slice()]).is_err());
        assert!(SqParams::from_parts(vec![0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn from_parts_round_trips_accessors() {
        let p = SqParams::from_parts(vec![1.0, 2.0], vec![0.5, 0.25]).unwrap();
        assert_eq!(p.dim(), 2);
        assert_eq!(p.min(), &[1.0, 2.0]);
        assert_eq!(p.scale(), &[0.5, 0.25]);
        assert_eq!(p.max_component_error(), 0.25);
    }

    #[test]
    fn error_bound_grows_with_distance_and_is_zero_for_exact_params() {
        let p = SqParams::from_parts(vec![0.0; 4], vec![1.0; 4]).unwrap();
        assert!(p.l2_error_bound(100.0) > p.l2_error_bound(1.0));
        let exact = SqParams::from_parts(vec![0.0; 4], vec![0.0; 4]).unwrap();
        assert_eq!(exact.l2_error_bound(100.0), 0.0);
    }
}
