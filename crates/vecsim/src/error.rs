use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A vector had a different dimensionality than the container expects.
    DimensionMismatch {
        /// Dimensionality the container was created with.
        expected: usize,
        /// Dimensionality that was supplied.
        got: usize,
    },
    /// A parameter was outside its valid range (zero dimension, zero count,
    /// negative spread, ...). The string names the offending parameter.
    InvalidParameter(String),
    /// A file being parsed did not conform to the expected binary format.
    InvalidFormat(String),
    /// An underlying I/O failure while reading or writing vector files.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Error::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Error::InvalidFormat(what) => write!(f, "invalid file format: {what}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::DimensionMismatch {
            expected: 128,
            got: 64,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 128, got 64");
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error as _;
        let inner = std::io::Error::other("boom");
        let e = Error::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
