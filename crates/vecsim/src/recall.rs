//! Recall computation.
//!
//! Recall@k is the standard ANN quality measure the paper reports: the
//! fraction of the exact top-k that an approximate search returned. The
//! comparison is id-based with distance-tie tolerance handled upstream (the
//! exact ground truth already breaks ties deterministically).

use crate::Neighbor;

/// Recall of one result list against one ground-truth list.
///
/// `got` is the approximate result (ids, any order); `truth` is the exact
/// top-k. The effective k is `got.len()`: a ground-truth list longer than
/// the result list is truncated to the first `got.len()` entries (ground
/// truth is sorted nearest-first), so handing in an over-long truth list
/// cannot deflate the score below what a k-sized truth would give.
/// Duplicate ids in `got` are collapsed before matching — a result list
/// that pads itself with repeats only ever matches each truth id once.
/// The score is `|unique(got) ∩ truth[..k]| / k`. An empty ground truth
/// yields recall `1.0` (there was nothing to find).
///
/// # Example
///
/// ```rust
/// use vecsim::{recall::recall_at_k, Neighbor};
///
/// let truth = vec![Neighbor::new(1, 0.1), Neighbor::new(2, 0.2)];
/// assert_eq!(recall_at_k(&[2, 9], &truth), 0.5);
/// ```
pub fn recall_at_k(got: &[u32], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let scored = &truth[..truth.len().min(got.len().max(1))];
    let unique: std::collections::HashSet<u32> = got.iter().copied().collect();
    let hits = scored.iter().filter(|t| unique.contains(&t.id)).count();
    hits as f64 / scored.len() as f64
}

/// Mean recall across a batch of queries.
///
/// # Panics
///
/// Panics if `got.len() != truth.len()`.
pub fn mean_recall(got: &[Vec<u32>], truth: &[Vec<Neighbor>]) -> f64 {
    assert_eq!(
        got.len(),
        truth.len(),
        "result batch and ground-truth batch must align"
    );
    if got.is_empty() {
        return 1.0;
    }
    let sum: f64 = got
        .iter()
        .zip(truth)
        .map(|(g, t)| recall_at_k(g, t))
        .sum();
    sum / got.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(ids: &[u32]) -> Vec<Neighbor> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| Neighbor::new(id, i as f32))
            .collect()
    }

    #[test]
    fn perfect_recall() {
        assert_eq!(recall_at_k(&[3, 1, 2], &truth(&[1, 2, 3])), 1.0);
    }

    #[test]
    fn zero_recall() {
        assert_eq!(recall_at_k(&[7, 8], &truth(&[1, 2])), 0.0);
    }

    #[test]
    fn partial_recall() {
        assert_eq!(recall_at_k(&[1, 9, 10], &truth(&[1, 2])), 0.5);
    }

    #[test]
    fn empty_truth_counts_as_full_recall() {
        assert_eq!(recall_at_k(&[1, 2], &truth(&[])), 1.0);
    }

    #[test]
    fn extra_results_do_not_inflate_recall() {
        // got has many ids but only one matches the 2-element truth.
        assert_eq!(recall_at_k(&[1, 5, 6, 7, 8], &truth(&[1, 2])), 0.5);
    }

    #[test]
    fn overlong_truth_is_truncated_to_result_length() {
        // A 10-deep ground truth scored against a top-5 result list must
        // only score the first 5 truth entries, not deflate by 10.
        let t = truth(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(recall_at_k(&[5, 4, 3, 2, 1], &t), 1.0);
        assert_eq!(recall_at_k(&[1, 2, 90, 91, 92], &t), 0.4);
    }

    #[test]
    fn duplicate_result_ids_count_once() {
        let t = truth(&[1, 2, 3]);
        assert_eq!(recall_at_k(&[1, 1, 1], &t), 1.0 / 3.0);
    }

    #[test]
    fn empty_results_against_nonempty_truth_score_zero() {
        assert_eq!(recall_at_k(&[], &truth(&[1, 2])), 0.0);
    }

    #[test]
    fn mean_recall_averages() {
        let got = vec![vec![1u32, 2], vec![9]];
        let t = vec![truth(&[1, 2]), truth(&[1])];
        assert_eq!(mean_recall(&got, &t), 0.5);
    }

    #[test]
    fn mean_recall_of_empty_batch_is_one() {
        assert_eq!(mean_recall(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mean_recall_panics_on_misaligned_batches() {
        mean_recall(&[vec![1]], &[]);
    }
}
