use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A query or inserted vector did not match the index dimensionality.
    DimensionMismatch {
        /// Dimensionality the index was created with.
        expected: usize,
        /// Dimensionality that was supplied.
        got: usize,
    },
    /// A construction parameter was out of range.
    InvalidParameter(String),
    /// A serialized index blob failed validation.
    CorruptBlob(String),
    /// An error bubbled up from the vector layer.
    Vecsim(vecsim::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Error::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Error::CorruptBlob(what) => write!(f, "corrupt index blob: {what}"),
            Error::Vecsim(e) => write!(f, "vector error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Vecsim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vecsim::Error> for Error {
    fn from(e: vecsim::Error) -> Self {
        Error::Vecsim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_concise() {
        let e = Error::InvalidParameter("m must be >= 2".into());
        assert_eq!(e.to_string(), "invalid parameter: m must be >= 2");
    }

    #[test]
    fn vecsim_source_is_preserved() {
        use std::error::Error as _;
        let e = Error::from(vecsim::Error::InvalidParameter("x".into()));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
