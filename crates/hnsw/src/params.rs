//! Construction parameters.

use vecsim::Metric;

use crate::{Error, Result};

/// Parameters controlling HNSW construction and the default search.
///
/// The names follow the paper and the reference `hnswlib` implementation:
/// `M` is the degree budget on the upper layers (the ground layer allows
/// `2M`), `ef_construction` is the candidate-list width during insertion,
/// and `mL = 1/ln(M)` scales the geometric level sampler.
///
/// This is a non-consuming builder: configure with chained `&mut self`
/// methods and pass `&params` to [`crate::HnswIndex::build`].
///
/// # Example
///
/// ```rust
/// use hnsw::HnswParams;
/// use vecsim::Metric;
///
/// let p = HnswParams::new(16, 200)
///     .metric(Metric::Cosine)
///     .max_level(2) // a three-layer "pyramid" build, as meta-HNSW uses
///     .seed(7);
/// assert_eq!(p.m(), 16);
/// assert_eq!(p.m0(), 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HnswParams {
    m: usize,
    ef_construction: usize,
    metric: Metric,
    max_level: Option<usize>,
    seed: u64,
    extend_candidates: bool,
    keep_pruned: bool,
}

impl HnswParams {
    /// Creates parameters with degree budget `m` and construction beam
    /// width `ef_construction`. Values are validated at build time by
    /// [`HnswParams::validate`].
    pub fn new(m: usize, ef_construction: usize) -> Self {
        HnswParams {
            m,
            ef_construction,
            metric: Metric::L2,
            max_level: None,
            seed: 0,
            extend_candidates: false,
            keep_pruned: true,
        }
    }

    /// Sets the distance metric (default [`Metric::L2`]).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Caps the maximum level a node can be assigned. `max_level(2)` yields
    /// at most three layers (0, 1, 2) — the shape the paper's meta-HNSW
    /// uses. `None` (default) leaves the geometric sampler unbounded.
    pub fn max_level(mut self, level: usize) -> Self {
        self.max_level = Some(level);
        self
    }

    /// Seeds the level sampler, making builds fully deterministic.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the `extendCandidates` option of the neighbour-selection
    /// heuristic (Algorithm 4): also consider the candidates' own
    /// neighbours. Helps on extremely clustered data, at build-time cost.
    pub fn extend_candidates(mut self, on: bool) -> Self {
        self.extend_candidates = on;
        self
    }

    /// Enables `keepPrunedConnections` (default `true`): backfill the
    /// selection with discarded candidates until `M` links exist.
    pub fn keep_pruned(mut self, on: bool) -> Self {
        self.keep_pruned = on;
        self
    }

    /// Degree budget for layers above the ground layer.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree budget for the ground layer (`2M`, following the paper).
    pub fn m0(&self) -> usize {
        self.m * 2
    }

    /// Construction beam width.
    pub fn ef_construction(&self) -> usize {
        self.ef_construction
    }

    /// Distance metric.
    pub fn metric_kind(&self) -> Metric {
        self.metric
    }

    /// Level cap, if any.
    pub fn max_level_cap(&self) -> Option<usize> {
        self.max_level
    }

    /// RNG seed for level sampling.
    pub fn rng_seed(&self) -> u64 {
        self.seed
    }

    /// Whether the selection heuristic extends the candidate set.
    pub fn extends_candidates(&self) -> bool {
        self.extend_candidates
    }

    /// Whether pruned candidates backfill the selection.
    pub fn keeps_pruned(&self) -> bool {
        self.keep_pruned
    }

    /// Level-sampler scale `mL = 1 / ln(M)`.
    pub fn level_lambda(&self) -> f64 {
        1.0 / (self.m as f64).ln()
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `m < 2` or
    /// `ef_construction == 0`.
    pub fn validate(&self) -> Result<()> {
        if self.m < 2 {
            return Err(Error::InvalidParameter(format!(
                "m must be >= 2, got {}",
                self.m
            )));
        }
        if self.ef_construction == 0 {
            return Err(Error::InvalidParameter(
                "ef_construction must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams::new(16, 200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        HnswParams::default().validate().unwrap();
    }

    #[test]
    fn m0_is_twice_m() {
        assert_eq!(HnswParams::new(12, 100).m0(), 24);
    }

    #[test]
    fn invalid_m_is_rejected() {
        assert!(HnswParams::new(1, 100).validate().is_err());
        assert!(HnswParams::new(0, 100).validate().is_err());
    }

    #[test]
    fn invalid_ef_construction_is_rejected() {
        assert!(HnswParams::new(8, 0).validate().is_err());
    }

    #[test]
    fn level_lambda_matches_formula() {
        let p = HnswParams::new(16, 100);
        assert!((p.level_lambda() - 1.0 / 16f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn builder_chain_sets_all_fields() {
        let p = HnswParams::new(8, 50)
            .metric(Metric::InnerProduct)
            .max_level(2)
            .seed(99)
            .extend_candidates(true)
            .keep_pruned(false);
        assert_eq!(p.metric_kind(), Metric::InnerProduct);
        assert_eq!(p.max_level_cap(), Some(2));
        assert_eq!(p.rng_seed(), 99);
        assert!(p.extends_candidates());
        assert!(!p.keeps_pruned());
    }
}
