//! A from-scratch implementation of Hierarchical Navigable Small World
//! (HNSW) graphs (Malkov & Yashunin, TPAMI 2018), built for the d-HNSW
//! reproduction.
//!
//! Besides the standard algorithm this crate provides the two things d-HNSW
//! specifically needs:
//!
//! - **Capped-level ("pyramid") builds** — the paper's *meta-HNSW* is a
//!   three-layer representative index; [`HnswParams::max_level`] caps the
//!   level sampler so the hierarchy never exceeds a fixed height.
//! - **Flat serialization** — [`serialize`] encodes an index (graph +
//!   vectors) into one contiguous little-endian byte blob that can be
//!   placed verbatim in registered remote memory and fetched with a single
//!   `RDMA_READ`.
//!
//! # Example
//!
//! ```rust
//! use hnsw::{HnswIndex, HnswParams};
//! use vecsim::{gen, Metric};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = gen::sift_like(500, 42)?;
//! let queries = gen::perturbed_queries(&data, 5, 0.02, 43)?;
//!
//! let params = HnswParams::new(16, 100).metric(Metric::L2).seed(1);
//! let index = HnswIndex::build(data, &params)?;
//!
//! let hits = index.search(queries.get(0), 10, 64);
//! assert_eq!(hits.len(), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bruteforce;
mod build;
pub mod diagnostics;
mod error;
mod graph;
mod index;
mod params;
mod search;
pub mod serialize;

pub use bruteforce::BruteForceIndex;
pub use error::Error;
pub use index::{HnswIndex, SearchStats};
pub use params::HnswParams;

/// Convenient result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;
