//! Exact linear-scan index with the same call shape as [`crate::HnswIndex`].
//!
//! Used as the correctness oracle in tests and as the "exact" end of the
//! latency-recall benches.

use vecsim::{Dataset, Metric, Neighbor, TopK};

use crate::{Error, Result};

/// A brute-force exact index.
///
/// # Example
///
/// ```rust
/// use hnsw::BruteForceIndex;
/// use vecsim::{Dataset, Metric};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = Dataset::from_rows(&[[0.0f32, 0.0], [1.0, 1.0]])?;
/// let idx = BruteForceIndex::new(data, Metric::L2);
/// assert_eq!(idx.search(&[0.1, 0.1], 1)[0].id, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BruteForceIndex {
    data: Dataset,
    metric: Metric,
}

impl BruteForceIndex {
    /// Wraps a dataset for exact search under `metric`.
    pub fn new(data: Dataset, metric: Metric) -> Self {
        BruteForceIndex { data, metric }
    }

    /// Inserts a vector, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on a wrong-length vector.
    pub fn insert(&mut self, v: &[f32]) -> Result<u32> {
        let id = self.data.len() as u32;
        self.data.push(v).map_err(Error::from)?;
        Ok(id)
    }

    /// Exact top-`k`, sorted ascending by distance.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let mut top = TopK::new(k);
        for (i, v) in self.data.iter().enumerate() {
            top.push(i as u32, self.metric.distance(query, v));
        }
        top.into_sorted_vec()
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HnswIndex, HnswParams};
    use vecsim::gen;

    #[test]
    fn matches_ground_truth_exactly() {
        let data = gen::uniform(8, 500, 0.0, 1.0, 3).unwrap();
        let queries = gen::uniform(8, 10, 0.0, 1.0, 4).unwrap();
        let idx = BruteForceIndex::new(data.clone(), Metric::L2);
        for q in queries.iter() {
            let got = idx.search(q, 7);
            let truth = vecsim::ground_truth::exact(&data, q, 7, Metric::L2);
            assert_eq!(got, truth);
        }
    }

    #[test]
    fn insert_appends_sequentially() {
        let mut idx = BruteForceIndex::new(Dataset::new(2), Metric::L2);
        assert_eq!(idx.insert(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(idx.insert(&[1.0, 1.0]).unwrap(), 1);
        assert!(idx.insert(&[1.0]).is_err());
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn hnsw_recall_measured_against_bruteforce() {
        let data = gen::uniform(8, 1_000, 0.0, 1.0, 13).unwrap();
        let exact = BruteForceIndex::new(data.clone(), Metric::L2);
        let approx = HnswIndex::build(data, &HnswParams::new(12, 100).seed(14)).unwrap();
        let q = [0.5f32; 8];
        let truth = exact.search(&q, 10);
        let got = approx.search(&q, 10, 100);
        let hits = got
            .iter()
            .filter(|g| truth.iter().any(|t| t.id == g.id))
            .count();
        assert!(hits >= 8, "only {hits}/10 found");
    }
}
