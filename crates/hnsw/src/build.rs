//! Construction helpers: level sampling and the neighbour-selection
//! heuristic (Algorithm 4 of the HNSW paper).

use rand::rngs::StdRng;
use rand::Rng;

use vecsim::{Dataset, Metric, Neighbor};

use crate::graph::Graph;

/// Samples a node level from the geometric distribution
/// `l = floor(-ln(U) * mL)`, optionally capped.
pub(crate) fn sample_level(rng: &mut StdRng, lambda: f64, cap: Option<usize>) -> usize {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let l = (-u.ln() * lambda).floor() as usize;
    match cap {
        Some(c) => l.min(c),
        None => l,
    }
}

/// Algorithm 4: selects up to `m` diverse neighbours from `candidates`
/// (sorted ascending by distance to the inserted point).
///
/// A candidate is kept only if it is closer to the query than to every
/// already-selected neighbour — this prunes redundant edges that point into
/// the same region and is what gives HNSW graphs their navigability. With
/// `keep_pruned`, discarded candidates backfill the result up to `m`.
///
/// `extend_candidates` additionally pulls in the candidates' own layer
/// neighbours before selecting (useful for very clustered data).
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_neighbors_heuristic(
    graph: &Graph,
    data: &Dataset,
    metric: Metric,
    query: &[f32],
    candidates: &[Neighbor],
    m: usize,
    layer: usize,
    extend_candidates: bool,
    keep_pruned: bool,
) -> Vec<u32> {
    let mut work: Vec<Neighbor> = candidates.to_vec();

    if extend_candidates {
        let mut seen: Vec<u32> = work.iter().map(|n| n.id).collect();
        let snapshot: Vec<u32> = seen.clone();
        for id in snapshot {
            for &nb in graph.node(id).neighbors(layer) {
                if !seen.contains(&nb) {
                    seen.push(nb);
                    let d = metric.distance(query, data.get(nb as usize));
                    work.push(Neighbor::new(nb, d));
                }
            }
        }
        work.sort();
    }

    let mut selected: Vec<Neighbor> = Vec::with_capacity(m);
    let mut discarded: Vec<Neighbor> = Vec::new();

    for &cand in work.iter() {
        if selected.len() >= m {
            break;
        }
        // Keep `cand` iff it is closer to the query than to any already
        // selected neighbour.
        let cand_vec = data.get(cand.id as usize);
        let dominated = selected.iter().any(|s| {
            metric.distance(cand_vec, data.get(s.id as usize)) < cand.dist
        });
        if dominated {
            discarded.push(cand);
        } else {
            selected.push(cand);
        }
    }

    if keep_pruned {
        let mut i = 0;
        while selected.len() < m && i < discarded.len() {
            selected.push(discarded[i]);
            i += 1;
        }
    }

    selected.sort();
    selected.into_iter().map(|n| n.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_level_respects_cap() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let l = sample_level(&mut rng, 1.0 / 16f64.ln(), Some(2));
            assert!(l <= 2);
        }
    }

    #[test]
    fn sample_level_distribution_is_geometric_ish() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 1.0 / 16f64.ln();
        let n = 100_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            let l = sample_level(&mut rng, lambda, None).min(7);
            counts[l] += 1;
        }
        // P(level 0) = 1 - e^{-1/λ}... for mL = 1/ln16, P(l >= 1) = 1/16.
        let frac_l0 = counts[0] as f64 / n as f64;
        assert!(
            (frac_l0 - 15.0 / 16.0).abs() < 0.01,
            "P(l=0) was {frac_l0}"
        );
        assert!(counts[1] > counts[2]);
    }

    /// On a square of points, the heuristic should keep direction-diverse
    /// neighbours rather than all candidates crowded on one side.
    #[test]
    fn heuristic_prefers_diverse_directions() {
        // Query at origin. Candidates: two very close together to the
        // right, one farther up. Plain top-2 keeps the two right-side
        // points; the heuristic must keep one right + one up.
        let data = Dataset::from_rows(&[
            [1.0f32, 0.0], // 0: right
            [1.1, 0.0],    // 1: right, redundant with 0
            [0.0, 1.5],    // 2: up
        ])
        .unwrap();
        let mut g = Graph::default();
        for _ in 0..3 {
            g.push_node(0);
        }
        let q = [0.0f32, 0.0];
        let mut cands: Vec<Neighbor> = (0..3u32)
            .map(|i| Neighbor::new(i, Metric::L2.distance(&q, data.get(i as usize))))
            .collect();
        cands.sort();
        let picked = select_neighbors_heuristic(
            &g, &data, Metric::L2, &q, &cands, 2, 0, false, false,
        );
        assert!(picked.contains(&0));
        assert!(picked.contains(&2), "expected the diverse neighbour, got {picked:?}");
    }

    #[test]
    fn keep_pruned_backfills_to_m() {
        let data = Dataset::from_rows(&[[1.0f32, 0.0], [1.1, 0.0], [1.2, 0.0]]).unwrap();
        let mut g = Graph::default();
        for _ in 0..3 {
            g.push_node(0);
        }
        let q = [0.0f32, 0.0];
        let mut cands: Vec<Neighbor> = (0..3u32)
            .map(|i| Neighbor::new(i, Metric::L2.distance(&q, data.get(i as usize))))
            .collect();
        cands.sort();
        // All three candidates sit on a ray, so the heuristic keeps only
        // the closest — unless keep_pruned backfills.
        let strict =
            select_neighbors_heuristic(&g, &data, Metric::L2, &q, &cands, 3, 0, false, false);
        assert_eq!(strict, vec![0]);
        let filled =
            select_neighbors_heuristic(&g, &data, Metric::L2, &q, &cands, 3, 0, false, true);
        assert_eq!(filled.len(), 3);
    }

    #[test]
    fn heuristic_handles_more_candidates_than_m() {
        let rows: Vec<[f32; 2]> = (0..10).map(|i| [i as f32, 0.5]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let mut g = Graph::default();
        for _ in 0..10 {
            g.push_node(0);
        }
        let q = [0.0f32, 0.0];
        let mut cands: Vec<Neighbor> = (0..10u32)
            .map(|i| Neighbor::new(i, Metric::L2.distance(&q, data.get(i as usize))))
            .collect();
        cands.sort();
        let picked = select_neighbors_heuristic(
            &g, &data, Metric::L2, &q, &cands, 4, 0, false, true,
        );
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn extend_candidates_reaches_unlisted_neighbours() {
        // Candidate 0 links to node 2 on the layer; with extension node 2
        // becomes selectable even though it was not a search candidate.
        let data =
            Dataset::from_rows(&[[1.0f32, 0.0], [0.0, 2.0], [0.5, 0.5]]).unwrap();
        let mut g = Graph::default();
        for _ in 0..3 {
            g.push_node(0);
        }
        g.node_mut(0).neighbors_mut(0).push(2);
        let q = [0.0f32, 0.0];
        let cands = vec![Neighbor::new(0, Metric::L2.distance(&q, data.get(0)))];
        let picked = select_neighbors_heuristic(
            &g, &data, Metric::L2, &q, &cands, 2, 0, true, true,
        );
        assert!(picked.contains(&2), "extension should surface node 2: {picked:?}");
    }
}
