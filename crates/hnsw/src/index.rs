//! The public HNSW index type.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use vecsim::{Dataset, Neighbor};

use crate::build::{sample_level, select_neighbors_heuristic};
use crate::graph::Graph;
use crate::search::{greedy_descend_layer, search_layer, LayerStats, VisitedSet};
use crate::{Error, HnswParams, Result};

/// Work counters for a single search, split the way the paper's latency
/// breakdown wants them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Distance evaluations performed.
    pub dist_evals: u64,
    /// Graph hops (neighbour expansions) performed.
    pub hops: u64,
}

impl SearchStats {
    fn absorb(&mut self, l: LayerStats) {
        self.dist_evals += l.dist_evals;
        self.hops += l.hops;
    }
}

/// A Hierarchical Navigable Small World index over an owned [`Dataset`].
///
/// Thread-safe for concurrent searches (`&self`); insertion requires
/// `&mut self`.
///
/// # Example
///
/// ```rust
/// use hnsw::{HnswIndex, HnswParams};
/// use vecsim::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = gen::uniform(8, 300, 0.0, 1.0, 5)?;
/// let index = HnswIndex::build(data, &HnswParams::new(8, 64))?;
/// let out = index.search(&[0.5; 8], 3, 32);
/// assert_eq!(out.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HnswIndex {
    params: HnswParams,
    data: Dataset,
    graph: Graph,
    rng: StdRng,
    // Pool of reusable visited sets so concurrent searches don't allocate
    // an O(n) scratch buffer each call.
    visited_pool: Mutex<Vec<VisitedSet>>,
}

impl HnswIndex {
    /// Creates an empty index for vectors of dimensionality `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the parameters fail
    /// [`HnswParams::validate`] or `dim == 0`.
    pub fn new(dim: usize, params: &HnswParams) -> Result<Self> {
        params.validate()?;
        if dim == 0 {
            return Err(Error::InvalidParameter("dim must be non-zero".into()));
        }
        Ok(HnswIndex {
            params: params.clone(),
            data: Dataset::new(dim),
            graph: Graph::default(),
            rng: StdRng::seed_from_u64(params.rng_seed()),
            visited_pool: Mutex::new(Vec::new()),
        })
    }

    /// Builds an index by inserting every vector of `data` in order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on invalid parameters or an
    /// empty/zero-dimension dataset.
    pub fn build(data: Dataset, params: &HnswParams) -> Result<Self> {
        let mut index = HnswIndex::new(data.dim().max(1), params)?;
        if data.dim() == 0 {
            return Err(Error::InvalidParameter(
                "dataset must have non-zero dimension".into(),
            ));
        }
        for row in data.iter() {
            index.insert(row)?;
        }
        Ok(index)
    }

    /// Rebuilds an index from previously extracted parts (deserialization).
    pub(crate) fn from_parts(
        params: HnswParams,
        data: Dataset,
        links: Vec<Vec<Vec<u32>>>,
        entry: Option<u32>,
        max_level: usize,
    ) -> Self {
        let nodes = links
            .into_iter()
            .map(crate::graph::Node::from_links)
            .collect();
        HnswIndex {
            rng: StdRng::seed_from_u64(params.rng_seed()),
            params,
            data,
            graph: Graph {
                nodes,
                entry,
                max_level,
            },
            visited_pool: Mutex::new(Vec::new()),
        }
    }

    /// Inserts a vector and returns its id (sequential from zero).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `v` has the wrong length.
    pub fn insert(&mut self, v: &[f32]) -> Result<u32> {
        if v.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                got: v.len(),
            });
        }
        let level = sample_level(
            &mut self.rng,
            self.params.level_lambda(),
            self.params.max_level_cap(),
        );

        // Capture the pre-insert entry point: the new node must be linked
        // by searching from the OLD graph top.
        let prev_entry = self.graph.entry;
        let prev_max = self.graph.max_level;

        self.data.push(v).map_err(Error::from)?;
        let id = self.graph.push_node(level);

        let Some(entry) = prev_entry else {
            return Ok(id); // first node: nothing to link
        };

        let metric = self.params.metric_kind();
        let mut stats = LayerStats::default();
        let mut cur = entry;
        let mut cur_dist = metric.distance(v, self.data.get(cur as usize));

        // Greedy descent through layers above the new node's level.
        for layer in ((level + 1)..=prev_max).rev() {
            (cur, cur_dist) = greedy_descend_layer(
                &self.graph,
                &self.data,
                metric,
                v,
                cur,
                cur_dist,
                layer,
                &mut stats,
            );
        }

        // Beam search + linking on each layer the new node exists on.
        let mut visited = self.take_visited();
        let mut eps = vec![Neighbor::new(cur, cur_dist)];
        for layer in (0..=level.min(prev_max)).rev() {
            let w = search_layer(
                &self.graph,
                &self.data,
                metric,
                v,
                &eps,
                self.params.ef_construction(),
                layer,
                &mut visited,
                &mut stats,
            );
            let m_cap = self.layer_cap(layer);
            let selected = select_neighbors_heuristic(
                &self.graph,
                &self.data,
                metric,
                v,
                &w,
                self.params.m(),
                layer,
                self.params.extends_candidates(),
                self.params.keeps_pruned(),
            );
            for &nb in &selected {
                self.graph.node_mut(id).neighbors_mut(layer).push(nb);
                self.graph.node_mut(nb).neighbors_mut(layer).push(id);
                self.shrink_if_needed(nb, layer, m_cap);
            }
            eps = w;
        }
        self.put_visited(visited);
        Ok(id)
    }

    /// Per-layer degree cap: `2M` on the ground layer, `M` above.
    fn layer_cap(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m0()
        } else {
            self.params.m()
        }
    }

    /// Re-selects `node`'s neighbour list on `layer` when it exceeds `cap`.
    fn shrink_if_needed(&mut self, node: u32, layer: usize, cap: usize) {
        if self.graph.node(node).neighbors(layer).len() <= cap {
            return;
        }
        let metric = self.params.metric_kind();
        let node_vec = self.data.get(node as usize).to_vec();
        let mut cands: Vec<Neighbor> = self
            .graph
            .node(node)
            .neighbors(layer)
            .iter()
            .map(|&nb| Neighbor::new(nb, metric.distance(&node_vec, self.data.get(nb as usize))))
            .collect();
        cands.sort();
        let selected = select_neighbors_heuristic(
            &self.graph,
            &self.data,
            metric,
            &node_vec,
            &cands,
            cap,
            layer,
            false,
            self.params.keeps_pruned(),
        );
        *self.graph.node_mut(node).neighbors_mut(layer) = selected;
    }

    fn take_visited(&self) -> VisitedSet {
        self.visited_pool.lock().pop().unwrap_or_default()
    }

    fn put_visited(&self, v: VisitedSet) {
        let mut pool = self.visited_pool.lock();
        if pool.len() < 64 {
            pool.push(v);
        }
    }

    /// Searches for the `k` nearest neighbours of `query` with beam width
    /// `ef`. Returns up to `min(k, ef)` results sorted by ascending
    /// distance — an `ef` below `k` deliberately narrows the candidate
    /// list, trading recall for speed, which is how the d-HNSW paper
    /// sweeps `efSearch` from 1 even for top-10 queries.
    ///
    /// An empty index or a dimension-mismatched query yields an empty
    /// result (searches are infallible by design; validation belongs on
    /// the insert path).
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        let mut stats = SearchStats::default();
        self.search_with_stats(query, k, ef, &mut stats)
    }

    /// Like [`HnswIndex::search`] but accumulates work counters into
    /// `stats`.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let Some(entry) = self.graph.entry else {
            return Vec::new();
        };
        if query.len() != self.dim() || k == 0 {
            return Vec::new();
        }
        let metric = self.params.metric_kind();

        let mut layer_stats = LayerStats::default();
        let mut cur = entry;
        let mut cur_dist = metric.distance(query, self.data.get(cur as usize));
        layer_stats.dist_evals += 1;

        for layer in (1..=self.graph.max_level).rev() {
            (cur, cur_dist) = greedy_descend_layer(
                &self.graph,
                &self.data,
                metric,
                query,
                cur,
                cur_dist,
                layer,
                &mut layer_stats,
            );
        }

        let mut visited = self.take_visited();
        let eps = [Neighbor::new(cur, cur_dist)];
        let mut out = search_layer(
            &self.graph,
            &self.data,
            metric,
            query,
            &eps,
            ef,
            0,
            &mut visited,
            &mut layer_stats,
        );
        self.put_visited(visited);
        out.truncate(k);
        stats.absorb(layer_stats);
        out
    }

    /// Like [`HnswIndex::search`], but only returns results satisfying
    /// `keep` (e.g. visibility filters or tombstones maintained outside
    /// the index). The beam itself is unfiltered — filtering happens on
    /// result collection, so recall on the kept subset degrades gracefully
    /// rather than stranding the search; pass a generous `ef` when the
    /// filter is highly selective.
    pub fn search_filtered<F>(&self, query: &[f32], k: usize, ef: usize, keep: F) -> Vec<Neighbor>
    where
        F: Fn(u32) -> bool,
    {
        let wide = self.search(query, ef.max(k), ef);
        wide.into_iter().filter(|n| keep(n.id)).take(k).collect()
    }

    /// Greedy multi-layer descent only — returns the single closest node
    /// found by walking from the top layer down to `stop_layer` without a
    /// beam search. This is the primitive the meta-HNSW uses to classify a
    /// vector into a partition, and with `beam > 1` it returns the `beam`
    /// closest bottom-layer candidates encountered.
    pub fn descend(&self, query: &[f32], beam: usize) -> Vec<Neighbor> {
        let Some(entry) = self.graph.entry else {
            return Vec::new();
        };
        if query.len() != self.dim() || beam == 0 {
            return Vec::new();
        }
        let metric = self.params.metric_kind();
        let mut layer_stats = LayerStats::default();
        let mut cur = entry;
        let mut cur_dist = metric.distance(query, self.data.get(cur as usize));
        for layer in (1..=self.graph.max_level).rev() {
            (cur, cur_dist) = greedy_descend_layer(
                &self.graph,
                &self.data,
                metric,
                query,
                cur,
                cur_dist,
                layer,
                &mut layer_stats,
            );
        }
        let mut visited = self.take_visited();
        let eps = [Neighbor::new(cur, cur_dist)];
        let out = search_layer(
            &self.graph,
            &self.data,
            metric,
            query,
            &eps,
            beam,
            0,
            &mut visited,
            &mut layer_stats,
        );
        self.put_visited(visited);
        out
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.len() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }

    /// Highest layer currently present.
    pub fn max_level(&self) -> usize {
        self.graph.max_level
    }

    /// Current entry point id, if any.
    pub fn entry_point(&self) -> Option<u32> {
        self.graph.entry
    }

    /// The level (highest layer) of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn level_of(&self, id: u32) -> usize {
        self.graph.node(id).level()
    }

    /// Neighbour list of `id` on `layer` (empty when the node does not
    /// exist on that layer).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn neighbors(&self, id: u32, layer: usize) -> &[u32] {
        self.graph.node(id).neighbors(layer)
    }

    /// The stored vector for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn vector(&self, id: u32) -> &[f32] {
        self.data.get(id as usize)
    }

    /// The backing dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// All per-layer adjacency of node `id` (layer 0 first).
    pub(crate) fn node_links(&self, id: u32) -> &[Vec<u32>] {
        self.graph.node(id).layers()
    }

    /// Approximate in-memory footprint in bytes: vectors plus adjacency.
    /// This is the number the paper quotes when it says the meta-HNSW
    /// costs 0.373 MB for SIFT1M.
    pub fn memory_footprint(&self) -> usize {
        let vectors = self.data.byte_len();
        let links: usize = self
            .graph
            .nodes
            .iter()
            .map(|n| {
                n.layers()
                    .iter()
                    .map(|l| l.len() * std::mem::size_of::<u32>() + std::mem::size_of::<u32>())
                    .sum::<usize>()
            })
            .sum();
        vectors + links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsim::{gen, ground_truth, recall, Metric};

    fn small_params() -> HnswParams {
        HnswParams::new(8, 64).seed(11)
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HnswIndex::new(4, &small_params()).unwrap();
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 4], 5, 10).is_empty());
        assert!(idx.descend(&[0.0; 4], 1).is_empty());
    }

    #[test]
    fn build_rejects_zero_dim() {
        assert!(HnswIndex::new(0, &small_params()).is_err());
    }

    #[test]
    fn insert_rejects_wrong_dimension() {
        let mut idx = HnswIndex::new(4, &small_params()).unwrap();
        assert!(matches!(
            idx.insert(&[0.0; 3]).unwrap_err(),
            Error::DimensionMismatch { expected: 4, got: 3 }
        ));
    }

    #[test]
    fn single_vector_is_its_own_answer() {
        let mut idx = HnswIndex::new(2, &small_params()).unwrap();
        idx.insert(&[1.0, 2.0]).unwrap();
        let out = idx.search(&[1.0, 2.0], 1, 8);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
        assert_eq!(out[0].dist, 0.0);
    }

    #[test]
    fn ids_are_sequential() {
        let mut idx = HnswIndex::new(1, &small_params()).unwrap();
        for i in 0..5 {
            assert_eq!(idx.insert(&[i as f32]).unwrap(), i);
        }
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn search_returns_sorted_unique_results() {
        let data = gen::uniform(8, 500, 0.0, 1.0, 3).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        let out = idx.search(&[0.5; 8], 10, 50);
        assert_eq!(out.len(), 10);
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "duplicate ids in result");
    }

    #[test]
    fn recall_is_high_on_uniform_data() {
        let data = gen::uniform(16, 2_000, 0.0, 1.0, 7).unwrap();
        let queries = gen::perturbed_queries(&data, 50, 0.02, 8).unwrap();
        let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
        let idx = HnswIndex::build(data, &HnswParams::new(16, 200).seed(9)).unwrap();
        let got: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| idx.search(q, 10, 128).iter().map(|n| n.id).collect())
            .collect();
        let r = recall::mean_recall(&got, &truth);
        assert!(r > 0.95, "recall {r} too low");
    }

    #[test]
    fn recall_improves_with_ef() {
        let data = gen::sift_like(2_000, 21).unwrap();
        let queries = gen::perturbed_queries(&data, 40, 0.02, 22).unwrap();
        let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
        let idx = HnswIndex::build(data, &HnswParams::new(8, 100).seed(23)).unwrap();
        let recall_at = |ef: usize| {
            let got: Vec<Vec<u32>> = queries
                .iter()
                .map(|q| idx.search(q, 10, ef).iter().map(|n| n.id).collect())
                .collect();
            recall::mean_recall(&got, &truth)
        };
        let low = recall_at(10);
        let high = recall_at(200);
        assert!(high >= low, "ef=200 recall {high} < ef=10 recall {low}");
        assert!(high > 0.9, "high-ef recall {high} too low");
    }

    #[test]
    fn degree_caps_are_respected() {
        let data = gen::uniform(4, 1_000, 0.0, 1.0, 31).unwrap();
        let params = HnswParams::new(6, 50).seed(32);
        let idx = HnswIndex::build(data, &params).unwrap();
        for id in 0..idx.len() as u32 {
            for layer in 0..=idx.level_of(id) {
                let cap = if layer == 0 { params.m0() } else { params.m() };
                let deg = idx.neighbors(id, layer).len();
                assert!(deg <= cap, "node {id} layer {layer} degree {deg} > {cap}");
            }
        }
    }

    #[test]
    fn capped_level_build_never_exceeds_cap() {
        let data = gen::uniform(4, 2_000, 0.0, 1.0, 41).unwrap();
        let params = HnswParams::new(8, 50).seed(42).max_level(2);
        let idx = HnswIndex::build(data, &params).unwrap();
        assert!(idx.max_level() <= 2);
        for id in 0..idx.len() as u32 {
            assert!(idx.level_of(id) <= 2);
        }
    }

    #[test]
    fn links_are_bidirectional_on_layer0() {
        let data = gen::uniform(4, 300, 0.0, 1.0, 51).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        // Pruning can make a few edges one-directional; the overwhelming
        // majority must be symmetric.
        let mut total = 0usize;
        let mut symmetric = 0usize;
        for id in 0..idx.len() as u32 {
            for &nb in idx.neighbors(id, 0) {
                total += 1;
                if idx.neighbors(nb, 0).contains(&id) {
                    symmetric += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            symmetric as f64 / total as f64 > 0.6,
            "only {symmetric}/{total} edges symmetric"
        );
    }

    #[test]
    fn graph_is_fully_reachable_from_entry() {
        let data = gen::uniform(4, 500, 0.0, 1.0, 61).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        // BFS over layer 0.
        let mut seen = vec![false; idx.len()];
        let mut queue = vec![idx.entry_point().unwrap()];
        seen[idx.entry_point().unwrap() as usize] = true;
        while let Some(v) = queue.pop() {
            for &nb in idx.neighbors(v, 0) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    queue.push(nb);
                }
            }
        }
        let reached = seen.iter().filter(|&&s| s).count();
        assert_eq!(reached, idx.len(), "layer-0 graph is disconnected");
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let data = gen::uniform(4, 200, 0.0, 1.0, 71).unwrap();
        let a = HnswIndex::build(data.clone(), &small_params()).unwrap();
        let b = HnswIndex::build(data, &small_params()).unwrap();
        assert_eq!(a.entry_point(), b.entry_point());
        for id in 0..a.len() as u32 {
            assert_eq!(a.node_links(id), b.node_links(id));
        }
    }

    #[test]
    fn descend_returns_bottom_layer_candidates() {
        let data = gen::uniform(4, 400, 0.0, 1.0, 81).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        let out = idx.descend(&[0.5; 4], 3);
        assert_eq!(out.len(), 3);
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn search_with_stats_counts_work() {
        let data = gen::uniform(8, 500, 0.0, 1.0, 91).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        let mut stats = SearchStats::default();
        idx.search_with_stats(&[0.5; 8], 5, 50, &mut stats);
        assert!(stats.dist_evals > 5);
        assert!(stats.hops > 0);
    }

    #[test]
    fn memory_footprint_grows_with_data() {
        let small = HnswIndex::build(
            gen::uniform(8, 50, 0.0, 1.0, 1).unwrap(),
            &small_params(),
        )
        .unwrap();
        let large = HnswIndex::build(
            gen::uniform(8, 500, 0.0, 1.0, 1).unwrap(),
            &small_params(),
        )
        .unwrap();
        assert!(large.memory_footprint() > small.memory_footprint());
    }

    #[test]
    fn ef_below_k_narrows_the_result_list() {
        let data = gen::uniform(8, 500, 0.0, 1.0, 95).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        let narrow = idx.search(&[0.5; 8], 10, 3);
        assert_eq!(narrow.len(), 3, "ef=3 caps the candidate list");
        let wide = idx.search(&[0.5; 8], 10, 50);
        assert_eq!(wide.len(), 10);
    }

    #[test]
    fn wrong_dim_query_returns_empty_not_panic() {
        let data = gen::uniform(8, 100, 0.0, 1.0, 1).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        assert!(idx.search(&[0.0; 4], 5, 10).is_empty());
    }

    #[test]
    fn filtered_search_excludes_rejected_ids() {
        let data = gen::uniform(8, 400, 0.0, 1.0, 97).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        let unfiltered = idx.search(&[0.5; 8], 5, 64);
        let banned = unfiltered[0].id;
        let filtered = idx.search_filtered(&[0.5; 8], 5, 64, |id| id != banned);
        assert!(filtered.iter().all(|n| n.id != banned));
        assert_eq!(filtered.len(), 5);
        // The remaining ranking is preserved.
        assert_eq!(filtered[0].id, unfiltered[1].id);
    }

    #[test]
    fn filter_keeping_everything_matches_plain_search() {
        let data = gen::uniform(8, 300, 0.0, 1.0, 98).unwrap();
        let idx = HnswIndex::build(data, &small_params()).unwrap();
        let a = idx.search(&[0.25; 8], 7, 50);
        let b = idx.search_filtered(&[0.25; 8], 7, 50, |_| true);
        assert_eq!(a, b);
    }

    #[test]
    fn index_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HnswIndex>();
    }
}
