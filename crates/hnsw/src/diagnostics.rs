//! Graph-quality diagnostics.
//!
//! HNSW behaviour is hard to reason about from recall numbers alone; this
//! module computes the structural properties that explain them: per-layer
//! population and degree statistics, layer-0 connectivity, and edge
//! symmetry. The d-HNSW workspace uses these in tests (to assert builds
//! are healthy) and they are generally useful for tuning `M` /
//! `ef_construction` on new datasets.

use crate::HnswIndex;

/// Statistics for one layer of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerReport {
    /// Layer index (0 = ground layer).
    pub layer: usize,
    /// Nodes present on this layer.
    pub nodes: usize,
    /// Total directed edges on this layer.
    pub edges: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
}

/// A full structural report over an index.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    /// Per-layer statistics, ground layer first.
    pub layers: Vec<LayerReport>,
    /// Nodes reachable from the entry point over layer-0 edges.
    pub reachable_from_entry: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Fraction of layer-0 directed edges whose reverse edge also exists.
    pub edge_symmetry: f64,
}

impl GraphReport {
    /// Whether every node is reachable on the ground layer — the property
    /// greedy search correctness depends on.
    pub fn is_connected(&self) -> bool {
        self.reachable_from_entry == self.nodes
    }
}

impl std::fmt::Display for GraphReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "graph: {} nodes, {}/{} reachable, {:.1}% symmetric edges",
            self.nodes,
            self.reachable_from_entry,
            self.nodes,
            self.edge_symmetry * 100.0
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  L{}: {} nodes, {} edges, degree {}..{} (mean {:.2})",
                l.layer, l.nodes, l.edges, l.min_degree, l.max_degree, l.mean_degree
            )?;
        }
        Ok(())
    }
}

/// Computes the structural report for `index`.
///
/// # Example
///
/// ```rust
/// use hnsw::{diagnostics, HnswIndex, HnswParams};
/// use vecsim::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let idx = HnswIndex::build(gen::uniform(4, 200, 0.0, 1.0, 1)?, &HnswParams::new(8, 50))?;
/// let report = diagnostics::analyze(&idx);
/// assert!(report.is_connected());
/// assert!(report.edge_symmetry > 0.5);
/// # Ok(())
/// # }
/// ```
pub fn analyze(index: &HnswIndex) -> GraphReport {
    let n = index.len();
    let mut layers = Vec::new();
    for layer in 0..=index.max_level() {
        let mut nodes = 0usize;
        let mut edges = 0usize;
        let mut min_degree = usize::MAX;
        let mut max_degree = 0usize;
        for id in 0..n as u32 {
            if index.level_of(id) < layer {
                continue;
            }
            let deg = index.neighbors(id, layer).len();
            nodes += 1;
            edges += deg;
            min_degree = min_degree.min(deg);
            max_degree = max_degree.max(deg);
        }
        layers.push(LayerReport {
            layer,
            nodes,
            edges,
            min_degree: if nodes == 0 { 0 } else { min_degree },
            max_degree,
            mean_degree: if nodes == 0 {
                0.0
            } else {
                edges as f64 / nodes as f64
            },
        });
    }

    // Layer-0 BFS from the entry point.
    let reachable = match index.entry_point() {
        None => 0,
        Some(entry) => {
            let mut seen = vec![false; n];
            let mut queue = vec![entry];
            seen[entry as usize] = true;
            let mut count = 1usize;
            while let Some(v) = queue.pop() {
                for &nb in index.neighbors(v, 0) {
                    if !seen[nb as usize] {
                        seen[nb as usize] = true;
                        count += 1;
                        queue.push(nb);
                    }
                }
            }
            count
        }
    };

    // Edge symmetry on layer 0.
    let mut total = 0usize;
    let mut symmetric = 0usize;
    for id in 0..n as u32 {
        for &nb in index.neighbors(id, 0) {
            total += 1;
            if index.neighbors(nb, 0).contains(&id) {
                symmetric += 1;
            }
        }
    }

    GraphReport {
        layers,
        reachable_from_entry: reachable,
        nodes: n,
        edge_symmetry: if total == 0 {
            1.0
        } else {
            symmetric as f64 / total as f64
        },
    }
}

/// Per-node out-degrees on `layer`, in node-id order (nodes that do
/// not reach the layer are skipped). Feeds skew analysis — a long tail
/// of low-degree nodes or a few hubs on the routing layer explains
/// uneven routing before recall numbers show it.
pub fn degree_histogram(index: &HnswIndex, layer: usize) -> Vec<usize> {
    (0..index.len() as u32)
        .filter(|&id| index.level_of(id) >= layer)
        .map(|id| index.neighbors(id, layer).len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HnswParams;
    use vecsim::gen;

    fn build(n: usize) -> HnswIndex {
        let data = gen::uniform(8, n, 0.0, 1.0, 4).unwrap();
        HnswIndex::build(data, &HnswParams::new(8, 60).seed(5)).unwrap()
    }

    #[test]
    fn healthy_build_is_connected_and_mostly_symmetric() {
        let report = analyze(&build(800));
        assert!(report.is_connected(), "{report}");
        assert!(report.edge_symmetry > 0.6, "{report}");
    }

    #[test]
    fn layer_populations_shrink_upward() {
        let report = analyze(&build(2_000));
        for w in report.layers.windows(2) {
            assert!(
                w[0].nodes >= w[1].nodes,
                "layer {} has {} nodes but layer {} has {}",
                w[0].layer,
                w[0].nodes,
                w[1].layer,
                w[1].nodes
            );
        }
        assert_eq!(report.layers[0].nodes, 2_000);
    }

    #[test]
    fn degrees_respect_the_configured_caps() {
        let params = HnswParams::new(6, 40).seed(9);
        let data = gen::uniform(4, 600, 0.0, 1.0, 10).unwrap();
        let idx = HnswIndex::build(data, &params).unwrap();
        let report = analyze(&idx);
        assert!(report.layers[0].max_degree <= params.m0());
        for l in &report.layers[1..] {
            assert!(l.max_degree <= params.m(), "L{}: {}", l.layer, l.max_degree);
        }
    }

    #[test]
    fn empty_index_reports_cleanly() {
        let idx = HnswIndex::new(4, &HnswParams::new(4, 16)).unwrap();
        let report = analyze(&idx);
        assert_eq!(report.nodes, 0);
        assert!(!report.is_connected() || report.nodes == 0);
        assert_eq!(report.edge_symmetry, 1.0);
    }

    #[test]
    fn single_node_is_trivially_connected() {
        let mut idx = HnswIndex::new(2, &HnswParams::new(4, 16)).unwrap();
        idx.insert(&[0.0, 0.0]).unwrap();
        let report = analyze(&idx);
        assert!(report.is_connected());
        assert_eq!(report.layers[0].edges, 0);
    }

    #[test]
    fn degree_histogram_matches_layer_report() {
        let idx = build(500);
        let report = analyze(&idx);
        for l in &report.layers {
            let hist = degree_histogram(&idx, l.layer);
            assert_eq!(hist.len(), l.nodes, "L{}", l.layer);
            assert_eq!(hist.iter().sum::<usize>(), l.edges, "L{}", l.layer);
            assert_eq!(hist.iter().copied().max().unwrap_or(0), l.max_degree);
        }
        assert!(degree_histogram(&idx, idx.max_level() + 1).is_empty());
    }

    #[test]
    fn display_mentions_every_layer() {
        let report = analyze(&build(300));
        let text = report.to_string();
        assert!(text.contains("L0:"));
        assert!(text.contains("reachable"));
    }
}
