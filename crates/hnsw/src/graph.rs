//! Internal adjacency storage for the multi-layer graph.

/// Per-node adjacency: one neighbour list per layer the node exists on.
/// A node of level `l` has `l + 1` lists (layers `0..=l`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Node {
    links: Vec<Vec<u32>>,
}

impl Node {
    pub(crate) fn with_level(level: usize) -> Self {
        Node {
            links: vec![Vec::new(); level + 1],
        }
    }

    /// Reconstructs a node from per-layer adjacency (deserialization path).
    pub(crate) fn from_links(links: Vec<Vec<u32>>) -> Self {
        Node { links }
    }

    /// Highest layer this node exists on.
    pub(crate) fn level(&self) -> usize {
        self.links.len().saturating_sub(1)
    }

    pub(crate) fn neighbors(&self, layer: usize) -> &[u32] {
        self.links.get(layer).map(Vec::as_slice).unwrap_or(&[])
    }

    pub(crate) fn neighbors_mut(&mut self, layer: usize) -> &mut Vec<u32> {
        &mut self.links[layer]
    }

    pub(crate) fn layers(&self) -> &[Vec<u32>] {
        &self.links
    }
}

/// The whole multi-layer graph: node adjacency plus the entry point.
#[derive(Debug, Clone, Default)]
pub(crate) struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) entry: Option<u32>,
    pub(crate) max_level: usize,
}

impl Graph {
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn node(&self, id: u32) -> &Node {
        &self.nodes[id as usize]
    }

    pub(crate) fn node_mut(&mut self, id: u32) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    /// Appends a node of the given level and returns its id; promotes it to
    /// entry point if it is the first node or reaches a new highest level.
    pub(crate) fn push_node(&mut self, level: usize) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::with_level(level));
        match self.entry {
            None => {
                self.entry = Some(id);
                self.max_level = level;
            }
            Some(_) if level > self.max_level => {
                self.entry = Some(id);
                self.max_level = level;
            }
            _ => {}
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_level_matches_layer_count() {
        let n = Node::with_level(2);
        assert_eq!(n.level(), 2);
        assert_eq!(n.layers().len(), 3);
        assert!(n.neighbors(0).is_empty());
        assert!(n.neighbors(5).is_empty(), "missing layers read as empty");
    }

    #[test]
    fn first_node_becomes_entry() {
        let mut g = Graph::default();
        let id = g.push_node(0);
        assert_eq!(g.entry, Some(id));
        assert_eq!(g.max_level, 0);
    }

    #[test]
    fn higher_level_node_takes_over_entry() {
        let mut g = Graph::default();
        g.push_node(0);
        let high = g.push_node(3);
        assert_eq!(g.entry, Some(high));
        assert_eq!(g.max_level, 3);
        // An equal-level later node must NOT steal the entry point.
        g.push_node(3);
        assert_eq!(g.entry, Some(high));
    }

    #[test]
    fn links_are_mutable_per_layer() {
        let mut g = Graph::default();
        let a = g.push_node(1);
        let b = g.push_node(0);
        g.node_mut(a).neighbors_mut(0).push(b);
        g.node_mut(b).neighbors_mut(0).push(a);
        assert_eq!(g.node(a).neighbors(0), &[b]);
        assert_eq!(g.node(a).neighbors(1), &[] as &[u32]);
    }
}
