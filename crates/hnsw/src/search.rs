//! Layer search primitives: greedy descent and beam (ef) search.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vecsim::{Dataset, Metric, Neighbor};

use crate::graph::Graph;

/// Reusable visited-set with O(1) clear via epoch stamping.
///
/// A plain `Vec<u32>` of epoch stamps: a node is visited in the current
/// search iff its stamp equals the current epoch. Bumping the epoch resets
/// the whole set without touching memory.
#[derive(Debug, Default, Clone)]
pub(crate) struct VisitedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// Begins a new search over `n` nodes; previous marks are forgotten.
    pub(crate) fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped around: stale stamps could collide, so clear.
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Marks `id` visited; returns `true` if it was not visited before.
    #[inline]
    pub(crate) fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.stamps[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Counters describing the work one search performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LayerStats {
    /// Number of distance evaluations.
    pub dist_evals: u64,
    /// Number of graph hops (neighbour expansions).
    pub hops: u64,
}

/// Greedy descent on one layer: repeatedly move to the closest neighbour
/// until no neighbour improves. This is the `ef = 1` search used on the
/// upper layers. Returns the local minimum and its distance.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedy_descend_layer(
    graph: &Graph,
    data: &Dataset,
    metric: Metric,
    query: &[f32],
    mut current: u32,
    mut current_dist: f32,
    layer: usize,
    stats: &mut LayerStats,
) -> (u32, f32) {
    loop {
        let mut improved = false;
        for &nb in graph.node(current).neighbors(layer) {
            stats.hops += 1;
            let d = metric.distance(query, data.get(nb as usize));
            stats.dist_evals += 1;
            if d < current_dist {
                current = nb;
                current_dist = d;
                improved = true;
            }
        }
        if !improved {
            return (current, current_dist);
        }
    }
}

/// Beam search on one layer (Algorithm 2 of the paper): maintains `ef`
/// dynamic candidates, expands the closest unexpanded candidate until the
/// closest candidate is farther than the worst of the `ef` best results.
///
/// Returns up to `ef` nearest entries, sorted ascending by distance.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_layer(
    graph: &Graph,
    data: &Dataset,
    metric: Metric,
    query: &[f32],
    entry_points: &[Neighbor],
    ef: usize,
    layer: usize,
    visited: &mut VisitedSet,
    stats: &mut LayerStats,
) -> Vec<Neighbor> {
    visited.reset(graph.len());

    // Min-heap of candidates to expand; max-heap of current best results.
    let mut candidates: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
    let mut results: BinaryHeap<Neighbor> = BinaryHeap::new();

    for &ep in entry_points {
        if visited.insert(ep.id) {
            candidates.push(Reverse(ep));
            results.push(ep);
            if results.len() > ef {
                results.pop();
            }
        }
    }

    while let Some(Reverse(c)) = candidates.pop() {
        let worst = results
            .peek()
            .map(|n| n.dist)
            .unwrap_or(f32::INFINITY);
        if c.dist > worst && results.len() >= ef {
            break;
        }
        for &nb in graph.node(c.id).neighbors(layer) {
            stats.hops += 1;
            if !visited.insert(nb) {
                continue;
            }
            let d = metric.distance(query, data.get(nb as usize));
            stats.dist_evals += 1;
            let worst = results
                .peek()
                .map(|n| n.dist)
                .unwrap_or(f32::INFINITY);
            if results.len() < ef || d < worst {
                let n = Neighbor::new(nb, d);
                candidates.push(Reverse(n));
                results.push(n);
                if results.len() > ef {
                    results.pop();
                }
            }
        }
    }

    let mut out = results.into_vec();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsim::Dataset;

    /// A tiny hand-built single-layer graph: a path 0-1-2-3 with vectors on
    /// a line, so greedy search from 0 must walk to the far end.
    fn line_graph() -> (Graph, Dataset) {
        let mut g = Graph::default();
        for _ in 0..4 {
            g.push_node(0);
        }
        let edges = [(0u32, 1u32), (1, 2), (2, 3)];
        for (a, b) in edges {
            g.node_mut(a).neighbors_mut(0).push(b);
            g.node_mut(b).neighbors_mut(0).push(a);
        }
        let data = Dataset::from_rows(&[[0.0f32], [1.0], [2.0], [3.0]]).unwrap();
        (g, data)
    }

    #[test]
    fn greedy_walks_to_local_minimum() {
        let (g, data) = line_graph();
        let q = [2.9f32];
        let d0 = Metric::L2.distance(&q, data.get(0));
        let mut stats = LayerStats::default();
        let (id, dist) =
            greedy_descend_layer(&g, &data, Metric::L2, &q, 0, d0, 0, &mut stats);
        assert_eq!(id, 3);
        assert!(dist < 0.02);
        assert!(stats.dist_evals > 0);
    }

    #[test]
    fn search_layer_finds_all_on_connected_graph() {
        let (g, data) = line_graph();
        let q = [1.4f32];
        let mut visited = VisitedSet::default();
        let mut stats = LayerStats::default();
        let ep = Neighbor::new(0, Metric::L2.distance(&q, data.get(0)));
        let out = search_layer(
            &g, &data, Metric::L2, &q, &[ep], 4, 0, &mut visited, &mut stats,
        );
        let ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 2, 0, 3]);
    }

    #[test]
    fn search_layer_respects_ef_bound() {
        let (g, data) = line_graph();
        let q = [0.0f32];
        let mut visited = VisitedSet::default();
        let mut stats = LayerStats::default();
        let ep = Neighbor::new(3, Metric::L2.distance(&q, data.get(3)));
        let out = search_layer(
            &g, &data, Metric::L2, &q, &[ep], 2, 0, &mut visited, &mut stats,
        );
        assert_eq!(out.len(), 2);
        assert!(out[0].dist <= out[1].dist);
    }

    #[test]
    fn visited_set_epochs_reset_without_clearing() {
        let mut v = VisitedSet::default();
        v.reset(4);
        assert!(v.insert(2));
        assert!(!v.insert(2));
        v.reset(4);
        assert!(v.insert(2), "new epoch forgets old marks");
    }

    #[test]
    fn visited_set_survives_epoch_wraparound() {
        let mut v = VisitedSet::default();
        v.reset(2);
        v.epoch = u32::MAX; // force wrap on next reset
        v.insert(0);
        v.reset(2);
        assert!(v.insert(0));
        assert!(!v.insert(0));
    }

    #[test]
    fn duplicate_entry_points_are_deduplicated() {
        let (g, data) = line_graph();
        let q = [0.0f32];
        let mut visited = VisitedSet::default();
        let mut stats = LayerStats::default();
        let ep = Neighbor::new(0, Metric::L2.distance(&q, data.get(0)));
        let out = search_layer(
            &g, &data, Metric::L2, &q, &[ep, ep, ep], 4, 0, &mut visited, &mut stats,
        );
        let ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
