//! Flat binary serialization of an HNSW index.
//!
//! The encoding is a single contiguous little-endian blob containing the
//! header, the adjacency lists, and the raw vectors. d-HNSW places these
//! blobs verbatim into registered remote memory, which is why the format
//! is deliberately position-independent (no pointers, only ids) and
//! readable with one sequential scan: a compute node can fetch a whole
//! cluster with one `RDMA_READ` and deserialize in place.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   u32   "HSW1" (0x31575348)
//! version u32   1
//! dim     u32
//! n       u32
//! entry   u32   u32::MAX when the index is empty
//! max_lvl u32
//! m       u32
//! ef_c    u32
//! metric  u8    0 = L2, 1 = IP, 2 = cosine
//! extend  u8    bool
//! keep    u8    bool
//! pad     u8
//! cap     u32   level cap + 1, 0 = uncapped
//! seed    u64
//! nodes   n × { levels u32, levels × { cnt u32, cnt × u32 } }
//! vecs    n × dim × f32
//! ```

use vecsim::{Dataset, Metric};

use crate::{Error, HnswIndex, HnswParams, Result};

/// Magic tag identifying a serialized HNSW blob.
pub const MAGIC: u32 = 0x3157_5348; // "HSW1"
/// Current format version.
pub const VERSION: u32 = 1;

fn metric_code(m: Metric) -> u8 {
    match m {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    }
}

fn metric_from_code(c: u8) -> Result<Metric> {
    match c {
        0 => Ok(Metric::L2),
        1 => Ok(Metric::InnerProduct),
        2 => Ok(Metric::Cosine),
        other => Err(Error::CorruptBlob(format!("unknown metric code {other}"))),
    }
}

/// Little-endian byte writer.
#[derive(Debug, Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian byte reader with bounds checking.
#[derive(Debug)]
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::CorruptBlob(format!(
                "truncated blob: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Serializes an index into one contiguous blob.
///
/// # Example
///
/// ```rust
/// use hnsw::{serialize, HnswIndex, HnswParams};
/// use vecsim::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let idx = HnswIndex::build(gen::uniform(4, 50, 0.0, 1.0, 1)?, &HnswParams::new(4, 16))?;
/// let blob = serialize::to_bytes(&idx);
/// let back = serialize::from_bytes(&blob)?;
/// assert_eq!(back.len(), idx.len());
/// # Ok(())
/// # }
/// ```
pub fn to_bytes(index: &HnswIndex) -> Vec<u8> {
    let p = index.params();
    let mut e = Enc::default();
    e.u32(MAGIC);
    e.u32(VERSION);
    e.u32(index.dim() as u32);
    e.u32(index.len() as u32);
    e.u32(index.entry_point().unwrap_or(u32::MAX));
    e.u32(index.max_level() as u32);
    e.u32(p.m() as u32);
    e.u32(p.ef_construction() as u32);
    e.u8(metric_code(p.metric_kind()));
    e.u8(p.extends_candidates() as u8);
    e.u8(p.keeps_pruned() as u8);
    e.u8(0);
    e.u32(p.max_level_cap().map(|c| c as u32 + 1).unwrap_or(0));
    e.u64(p.rng_seed());

    for id in 0..index.len() as u32 {
        let layers = index.node_links(id);
        e.u32(layers.len() as u32);
        for layer in layers {
            e.u32(layer.len() as u32);
            for &nb in layer {
                e.u32(nb);
            }
        }
    }
    for row in index.data().iter() {
        for &x in row {
            e.f32(x);
        }
    }
    e.buf
}

/// Size in bytes [`to_bytes`] would produce, without allocating the blob.
pub fn serialized_size(index: &HnswIndex) -> usize {
    let header = 4 * 8 + 4 + 4 + 8; // fixed fields above
    let nodes: usize = (0..index.len() as u32)
        .map(|id| {
            4 + index
                .node_links(id)
                .iter()
                .map(|l| 4 + 4 * l.len())
                .sum::<usize>()
        })
        .sum();
    let vectors = index.len() * index.dim() * 4;
    header + nodes + vectors
}

/// Deserializes a blob produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`Error::CorruptBlob`] on a bad magic/version, truncated data,
/// out-of-range ids, or trailing garbage.
pub fn from_bytes(blob: &[u8]) -> Result<HnswIndex> {
    let mut d = Dec::new(blob);
    if d.u32()? != MAGIC {
        return Err(Error::CorruptBlob("bad magic".into()));
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(Error::CorruptBlob(format!(
            "unsupported version {version}"
        )));
    }
    let dim = d.u32()? as usize;
    let n = d.u32()? as usize;
    let entry_raw = d.u32()?;
    let max_level = d.u32()? as usize;
    let m = d.u32()? as usize;
    let ef_c = d.u32()? as usize;
    let metric = metric_from_code(d.u8()?)?;
    let extend = d.u8()? != 0;
    let keep = d.u8()? != 0;
    let _pad = d.u8()?;
    let cap_raw = d.u32()?;
    let seed = d.u64()?;

    if dim == 0 && n > 0 {
        return Err(Error::CorruptBlob("zero dim with non-zero count".into()));
    }
    let entry = if entry_raw == u32::MAX {
        None
    } else if (entry_raw as usize) < n {
        Some(entry_raw)
    } else {
        return Err(Error::CorruptBlob(format!(
            "entry point {entry_raw} out of range (n = {n})"
        )));
    };

    let mut links = Vec::with_capacity(n);
    for node in 0..n {
        let levels = d.u32()? as usize;
        if levels == 0 || levels > max_level + 1 {
            return Err(Error::CorruptBlob(format!(
                "node {node} has {levels} layers but max level is {max_level}"
            )));
        }
        let mut layers = Vec::with_capacity(levels);
        for _ in 0..levels {
            let cnt = d.u32()? as usize;
            if cnt > n {
                return Err(Error::CorruptBlob(format!(
                    "node {node} neighbour count {cnt} exceeds n = {n}"
                )));
            }
            let mut ids = Vec::with_capacity(cnt);
            for _ in 0..cnt {
                let id = d.u32()?;
                if id as usize >= n {
                    return Err(Error::CorruptBlob(format!(
                        "neighbour id {id} out of range (n = {n})"
                    )));
                }
                ids.push(id);
            }
            layers.push(ids);
        }
        links.push(layers);
    }

    let mut flat = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        flat.push(d.f32()?);
    }
    if d.remaining() != 0 {
        return Err(Error::CorruptBlob(format!(
            "{} trailing bytes after payload",
            d.remaining()
        )));
    }

    let data = if n == 0 {
        Dataset::new(dim.max(1))
    } else {
        Dataset::from_flat(dim, flat)?
    };
    let mut params = HnswParams::new(m, ef_c)
        .metric(metric)
        .seed(seed)
        .extend_candidates(extend)
        .keep_pruned(keep);
    if cap_raw > 0 {
        params = params.max_level((cap_raw - 1) as usize);
    }
    params.validate()?;
    Ok(HnswIndex::from_parts(params, data, links, entry, max_level))
}

/// Writes an index blob to any writer (pass `&mut w` to keep the writer).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_to<W: std::io::Write>(mut w: W, index: &HnswIndex) -> Result<()> {
    w.write_all(&to_bytes(index))
        .map_err(|e| Error::CorruptBlob(format!("write failed: {e}")))
}

/// Reads an index blob from any reader (the reader is drained to EOF).
///
/// # Errors
///
/// Returns [`Error::CorruptBlob`] on malformed content or read failure.
pub fn read_from<R: std::io::Read>(mut r: R) -> Result<HnswIndex> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)
        .map_err(|e| Error::CorruptBlob(format!("read failed: {e}")))?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsim::gen;

    fn build_small() -> HnswIndex {
        let data = gen::uniform(8, 200, 0.0, 1.0, 5).unwrap();
        HnswIndex::build(data, &HnswParams::new(6, 40).seed(6)).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let idx = build_small();
        let blob = to_bytes(&idx);
        let back = from_bytes(&blob).unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.dim(), idx.dim());
        assert_eq!(back.entry_point(), idx.entry_point());
        assert_eq!(back.max_level(), idx.max_level());
        assert_eq!(back.params(), idx.params());
        for id in 0..idx.len() as u32 {
            assert_eq!(back.node_links(id), idx.node_links(id));
            assert_eq!(back.vector(id), idx.vector(id));
        }
    }

    #[test]
    fn round_tripped_index_searches_identically() {
        let idx = build_small();
        let back = from_bytes(&to_bytes(&idx)).unwrap();
        let q = [0.5f32; 8];
        assert_eq!(idx.search(&q, 10, 50), back.search(&q, 10, 50));
    }

    #[test]
    fn serialized_size_matches_actual() {
        let idx = build_small();
        assert_eq!(serialized_size(&idx), to_bytes(&idx).len());
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = HnswIndex::new(4, &HnswParams::new(4, 16)).unwrap();
        let back = from_bytes(&to_bytes(&idx)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.entry_point(), None);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut blob = to_bytes(&build_small());
        blob[0] ^= 0xff;
        assert!(matches!(
            from_bytes(&blob).unwrap_err(),
            Error::CorruptBlob(_)
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut blob = to_bytes(&build_small());
        blob[4] = 99;
        assert!(from_bytes(&blob).is_err());
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let blob = to_bytes(&build_small());
        for cut in [10, blob.len() / 2, blob.len() - 1] {
            assert!(from_bytes(&blob[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut blob = to_bytes(&build_small());
        blob.push(0);
        assert!(from_bytes(&blob).is_err());
    }

    #[test]
    fn out_of_range_entry_is_rejected() {
        let mut blob = to_bytes(&build_small());
        // Entry point is at offset 16.
        blob[16..20].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(from_bytes(&blob).is_err());
    }

    #[test]
    fn reader_writer_round_trip() {
        let idx = build_small();
        let mut buf = Vec::new();
        write_to(&mut buf, &idx).unwrap();
        let back = read_from(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), idx.len());
    }

    #[test]
    fn capped_params_round_trip() {
        let data = gen::uniform(4, 100, 0.0, 1.0, 5).unwrap();
        let idx =
            HnswIndex::build(data, &HnswParams::new(4, 20).max_level(2).seed(1)).unwrap();
        let back = from_bytes(&to_bytes(&idx)).unwrap();
        assert_eq!(back.params().max_level_cap(), Some(2));
    }
}
