#!/usr/bin/env bash
# Full local gate: release build, every test, lint-clean clippy, and the
# benchmark-regression smoke gate.
#
#   ./scripts/check.sh                   # the gate
#   ./scripts/check.sh --update-baseline # regenerate committed baselines
#                                        # (telemetry + bench) then re-gate
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE=1
fi

echo "==> cargo build --release"
cargo build --release --workspace

if [[ "$UPDATE" == 1 ]]; then
  echo "==> regenerating results/telemetry_baseline.{prom,json}"
  DHNSW_SIFT_N=4000 DHNSW_QUERIES=100 \
    target/release/repro fig6a --metrics-out results/telemetry_baseline
  echo "==> regenerating results/BENCH_baseline.json"
  target/release/bench_regress --profile smoke --label baseline --write-baseline
fi

echo "==> cargo test --workspace"
cargo test --workspace -q

# The search-thread and pipeline-depth knobs must not change any
# observable result: the whole suite runs across the matrix (the
# baseline run above already covered threads=auto x depth=1).
for threads in 1 4; do
  for depth in 1 2; do
    echo "==> cargo test --workspace --release (DHNSW_SEARCH_THREADS=$threads DHNSW_PIPELINE_DEPTH=$depth)"
    DHNSW_SEARCH_THREADS=$threads DHNSW_PIPELINE_DEPTH=$depth \
      cargo test --workspace --release -q
  done
done

# Concurrency stress gate: 100 seeded iterations of readers + writer
# under fault injection (plain `cargo test` runs a 4-iteration smoke).
echo "==> stress gate (DHNSW_STRESS_ITERS=100)"
DHNSW_STRESS_ITERS=100 cargo test --release -q --test stress

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Bench-regression smoke gate: latency tolerances are already generous,
# and the 4x scale keeps a loaded CI box from tripping the gate; the
# deterministic byte/doorbell/recall bands stay meaningfully tight.
# The run itself also hard-gates the sq8_* scenarios: compressed cold
# bytes < 0.30x of single_cold, recall@10 after rerank within 0.005,
# and nonzero rerank-cause bytes.
echo "==> bench_regress --profile smoke (vs results/BENCH_baseline.json)"
target/release/bench_regress --profile smoke --label check \
  --tolerance-scale 4.0

# Fault-injection smoke gate: the seeded sweep must keep recall
# identical to the clean run under the default retransmission budget
# (it exits non-zero if any faulted row degrades or errors).
echo "==> repro faults (fault-injection smoke gate)"
DHNSW_ABLATION_N=4000 DHNSW_ABLATION_Q=100 target/release/repro faults

# Same sweep over the compressed wire format: SQ8 stage loads, the
# overflow follow-up reads, and the exact-rerank doorbells must survive
# seeded verb drops just like the full-precision path does.
echo "==> repro faults with DHNSW_QUANTIZE_MODE=sq8 (quantized fault smoke)"
DHNSW_QUANTIZE_MODE=sq8 DHNSW_ABLATION_N=4000 DHNSW_ABLATION_Q=100 \
  target/release/repro faults

# Serving-plane smoke gate: build a tiny store, serve it on an
# ephemeral port, scrape the live endpoints over bash's /dev/tcp (no
# curl dependency in CI), and shut the server down gracefully. Gates
# that /metrics carries the per-cause byte provenance and /health the
# windowed SLO fields end to end.
echo "==> dhnsw_cli serve (metrics serving-plane smoke gate)"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
target/release/dhnsw_cli build --synthetic sift:3000 \
  --out "$SMOKE_DIR/store.dhnsw" 2>/dev/null
target/release/dhnsw_cli serve --store "$SMOKE_DIR/store.dhnsw" \
  > "$SMOKE_DIR/serve.out" 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SMOKE_DIR/serve.out" ]] && break
  sleep 0.1
done
URL=$(head -n1 "$SMOKE_DIR/serve.out")   # first stdout line is the URL
HOSTPORT=${URL#http://}
HOST=${HOSTPORT%:*}
PORT=${HOSTPORT##*:}
scrape() {
  exec 3<>"/dev/tcp/$HOST/$PORT"
  printf 'GET %s HTTP/1.1\r\nHost: smoke\r\n\r\n' "$1" >&3
  cat <&3
  exec 3<&-
}
scrape /metrics > "$SMOKE_DIR/metrics.prom"
grep -q '^# TYPE dhnsw_rdma_read_bytes_by_cause_total counter' "$SMOKE_DIR/metrics.prom"
grep -q '^dhnsw_rdma_read_bytes_by_cause_total{cause="stage_load"} [1-9]' "$SMOKE_DIR/metrics.prom"
scrape /health | grep -q '"window_p99_us"'
scrape /explain/last | grep -q 'stage_load'
# Tail-anatomy plane: the folded profile must carry at least one batch
# root frame and the exemplar store must report its occupancy.
scrape /profile/folded | grep -q '^query_batch'
scrape /exemplars | grep -q '"occupancy"'
# Time-series plane: every response is marked no-store, the ring serves
# (window, step)-thinned points, the anomaly log answers, and the live
# `top` dashboard renders a frame against the node. Give the background
# sampler a bit over two ticks so at least one derived window exists.
scrape /metrics | grep -q 'Cache-Control: no-store'
sleep 2.5
scrape '/timeseries?window=60&step=1' | grep -q '"points"'
# Explicitly-zero parameters are client errors, not empty results.
scrape '/timeseries?step=0' | grep -q '400 Bad Request'
scrape /anomalies | grep -q '"records"'
target/release/dhnsw_cli top --once --url "$URL" > "$SMOKE_DIR/top.out"
grep -q 'dhnsw top' "$SMOKE_DIR/top.out"
scrape /shutdown > /dev/null
wait "$SERVE_PID"

echo "OK: build, tests, clippy, bench, fault, and serve smoke gates all green."
