#!/usr/bin/env bash
# Full local gate: release build, every test, and lint-clean clippy.
# Run from the repo root:  ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK: build, tests, and clippy all green."
