#!/usr/bin/env bash
# Benchmark-regression driver around the bench_regress binary.
#
#   ./scripts/bench.sh                  # smoke run vs committed baseline
#   ./scripts/bench.sh --full           # full profile (local investigation)
#   ./scripts/bench.sh --update-baseline# rewrite results/BENCH_baseline.json
#   ./scripts/bench.sh --trace out.json # also save a Chrome/Perfetto trace
#
# Extra arguments after the flags are passed through to bench_regress.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE=smoke
UPDATE=0
TRACE_ARGS=()
PASSTHROUGH=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) PROFILE=full; shift ;;
    --update-baseline) UPDATE=1; shift ;;
    --trace) TRACE_ARGS=(--trace-out "$2"); shift 2 ;;
    *) PASSTHROUGH+=("$1"); shift ;;
  esac
done

echo "==> cargo build --release -p dhnsw-bench --bin bench_regress"
cargo build --release -p dhnsw-bench --bin bench_regress

BIN=target/release/bench_regress
if [[ "$UPDATE" == 1 ]]; then
  "$BIN" --profile "$PROFILE" --label baseline --write-baseline \
    "${TRACE_ARGS[@]}" "${PASSTHROUGH[@]}"
  echo "OK: baseline rewritten (results/BENCH_baseline.json)."
else
  "$BIN" --profile "$PROFILE" --label current \
    "${TRACE_ARGS[@]}" "${PASSTHROUGH[@]}"
  echo "OK: no benchmark regression vs results/BENCH_baseline.json."
fi
