#!/usr/bin/env python3
"""Patches EXPERIMENTS.md placeholders from repro_all_output.txt.

Usage: python3 scripts/fill_experiments.py
Idempotent only on a file that still carries MEAS_* placeholders; keep
the template around if you want to re-fill after a new run.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
out = (ROOT / "repro_all_output.txt").read_text()
exp_path = ROOT / "EXPERIMENTS.md"
exp = exp_path.read_text()


def section(title):
    m = re.search(rf"=== {re.escape(title)}[^\n]*===\n(.*?)(?=\n=== |\Z)", out, re.S)
    if not m:
        sys.exit(f"section not found: {title}")
    return m.group(1).strip("\n")


def fig_rows(title, efs):
    body = section(title)
    rows = {}
    for line in body.splitlines():
        m = re.match(r"\s*(\d+) \|", line)
        if m:
            ef = int(m.group(1))
            cells = [c.strip() for c in line.split("|")[1:-1]]
            rows[ef] = " | ".join(cells)
    return {ef: rows[ef] for ef in efs}


def fig_summary(title):
    body = section(title)
    for line in body.splitlines():
        if line.startswith("summary:"):
            return line[len("summary:"):].strip()
    sys.exit(f"summary not found in {title}")


def table_block(title):
    body = section(title)
    lines = [l for l in body.splitlines() if l.strip()]
    # header + 3 scheme rows -> markdown table
    hdr = ["Scheme", "Network", "Sub-HNSW", "Meta-HNSW", "trips/query", "recall"]
    md = ["| " + " | ".join(hdr) + " |", "|" + "---|" * len(hdr)]
    for l in lines[1:4]:
        parts = l.split()
        # scheme name may contain spaces; last 5 fields are numeric
        name = " ".join(parts[:-5])
        md.append("| " + " | ".join([name] + parts[-5:]) + " |")
    return "\n".join(md)


def verbatim(title):
    return "```text\n" + section(title) + "\n```"


# Figures
for tag, title in [
    ("6A", "Fig 6(a): SIFT, top-10"),
    ("6B", "Fig 6(b): SIFT, top-1"),
    ("6C", "Fig 6(c): GIST, top-10"),
    ("6D", "Fig 6(d): GIST, top-1"),
]:
    exp = exp.replace(f"MEAS_{tag}_SUMMARY", fig_summary(title))

rows = fig_rows("Fig 6(a): SIFT, top-10", [1, 8, 48])
for ef in (1, 8, 48):
    # cells already exclude the ef column (split dropped it)
    exp = exp.replace(f"MEAS_6A_{ef}", rows[ef])

# Tables
exp = exp.replace("MEAS_TABLE1", table_block("Table 1: SIFT1M@1, efSearch 48"))
exp = exp.replace("MEAS_TABLE2", table_block("Table 2: GIST1M@1, efSearch 48"))

# Meta size + ablations, verbatim blocks
exp = exp.replace("MEAS_METASIZE", verbatim("Meta-HNSW footprint (paper: 0.373 MB SIFT1M, 1.960 MB GIST1M)"))
exp = exp.replace("MEAS_DOORBELL", verbatim("Ablation: doorbell batch limit (§3.2 NIC-scalability tradeoff)"))
exp = exp.replace("MEAS_CACHE", verbatim("Ablation: compute-side cache fraction (§3.3, paper uses 10%)"))
exp = exp.replace("MEAS_ZIPF", verbatim("Ablation: cache under Zipf query skew (hot partitions stay resident)"))
exp = exp.replace("MEAS_FANOUT", verbatim("Ablation: partitions probed per query (fan-out b)"))
exp = exp.replace("MEAS_REPS", verbatim("Ablation: representative count (paper fixes 500)"))
exp = exp.replace("MEAS_TAIL", verbatim("Tail latency under mixed query/insert traces (20 batches x 200 queries)"))

left = re.findall(r"MEAS_\w+", exp)
if left:
    sys.exit(f"unfilled placeholders: {left}")
exp_path.write_text(exp)
print("EXPERIMENTS.md filled")
