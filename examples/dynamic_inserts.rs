//! Dynamic insertion workload (§3.2's overflow design in action): stream
//! vectors into a live store, watch the shared overflow areas fill, and
//! verify that every insert stays one contiguous read away.
//!
//! ```text
//! cargo run --release --example dynamic_inserts
//! ```

use dhnsw_repro::dhnsw::{DHnswConfig, Error, SearchMode, VectorStore};
use dhnsw_repro::vecsim::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = gen::sift_like(8_000, 21)?;
    let config = DHnswConfig::paper()
        .with_representatives(100)
        .with_overflow_slots(64); // 64 insert records per group
    let store = VectorStore::build(data.clone(), &config)?;
    let node = store.connect(SearchMode::Full)?;
    println!(
        "store: {} partitions in {} groups, {} overflow slots/group",
        store.partitions(),
        store.partitions().div_ceil(2),
        config.overflow_slots()
    );

    // Stream inserts: new vectors near existing data (the realistic case
    // — embeddings of new items from the same distribution).
    let stream = gen::perturbed_queries(&data, 600, 0.02, 22)?;
    let mut accepted = 0usize;
    let mut rejected_full = 0usize;
    let mut verify_hits = 0usize;

    node.reset_measurements();
    for (i, v) in stream.iter().enumerate() {
        match node.insert(v) {
            Ok(gid) => {
                accepted += 1;
                // Spot-check visibility: every 50th insert, immediately
                // query it back.
                if i % 50 == 0 {
                    let hit = node.query(v, 1, 32)?;
                    if hit[0].id == gid {
                        verify_hits += 1;
                    }
                }
            }
            Err(Error::OverflowFull { .. }) => rejected_full += 1,
            Err(e) => return Err(e.into()),
        }
    }
    let stats = node.queue_pair().stats().snapshot();
    println!(
        "stream of {}: {} accepted, {} rejected (overflow full), {}/{} spot checks found",
        stream.len(),
        accepted,
        rejected_full,
        verify_hits,
        stream.len() / 50 + 1
    );
    println!(
        "insert traffic: {} round trips total ({:.1} per insert), {} remote atomics, {:.1} KB written",
        stats.round_trips,
        stats.round_trips as f64 / stream.len() as f64,
        stats.atomics,
        stats.bytes_written as f64 / 1e3
    );

    // Reads after inserts are still single-span: load a cluster that
    // received inserts and confirm the read count.
    node.drop_cache();
    node.reset_measurements();
    let probe = stream.get(0);
    let _ = node.query(probe, 5, 32)?;
    let s = node.queue_pair().stats().snapshot();
    println!(
        "post-insert query: {} round trips for {} clusters (insert data travels with its cluster)",
        s.round_trips,
        store.config().fanout()
    );

    // Capacity accounting: how full are the overflow areas?
    let dir = store.directory();
    let record = dir.record_size() as u64;
    let qp = dhnsw_repro::rdma_sim::QueuePair::connect(
        store.memory_node(),
        store.config().network(),
    );
    let mut used_total = 0u64;
    let mut seen = std::collections::HashSet::new();
    let mut full_groups = 0usize;
    for loc in dir.locations() {
        if !seen.insert(loc.overflow_off) {
            continue;
        }
        let used_bytes = qp.read(store.region().rkey(), loc.overflow_counter_off(), 8)?;
        let used = u64::from_le_bytes(used_bytes.try_into().unwrap());
        let slots_used = (used / record).min(config.overflow_slots() as u64);
        used_total += slots_used;
        if used >= loc.overflow_capacity() {
            full_groups += 1;
        }
    }
    println!(
        "overflow occupancy: {} records across {} groups ({} groups saturated)",
        used_total,
        seen.len(),
        full_groups
    );
    println!(
        "note: saturated groups reject further inserts until a re-layout; \
         the paper defers re-layout to rebuild time — demonstrated below"
    );

    // Deletes use the same overflow path: a tombstone record.
    let gone = node.query(data.get(7), 1, 32)?;
    node.delete(data.get(7), gone[0].id)?;
    let after_delete = node.query(data.get(7), 1, 32)?;
    println!(
        "delete: tombstoned id {} via one FAA + one WRITE; nearest is now id {} (dist {:.3})",
        gone[0].id, after_delete[0].id, after_delete[0].dist
    );

    // Rebuild: fold every overflow record into the base clusters and
    // re-plan the layout with fresh overflow space.
    let rebuilt = store.rebuild()?;
    println!(
        "rebuild: {} base vectors (was {}), epoch {} -> {}, {:.1} MB remote",
        rebuilt.base_len(),
        store.base_len(),
        store.directory().epoch(),
        rebuilt.directory().epoch(),
        rebuilt.remote_bytes() as f64 / 1e6
    );
    let fresh = rebuilt.connect(SearchMode::Full)?;
    let check = fresh.query(stream.get(0), 1, 32)?;
    println!(
        "rebuilt store still finds insert #0 at distance {:.3} (id {})",
        check[0].dist, check[0].id
    );
    Ok(())
}
