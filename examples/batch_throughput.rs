//! Multi-instance throughput: several compute instances (threads with
//! their own queue pairs, clocks, and caches) hammer one memory pool, the
//! §4 testbed shape (the paper runs 24 instances across three servers).
//!
//! ```text
//! cargo run --release --example batch_throughput
//! ```

use std::time::Instant;

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_repro::vecsim::gen;

const INSTANCES: usize = 8;
const BATCHES_PER_INSTANCE: usize = 4;
const BATCH: usize = 250;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = gen::sift_like(16_000, 31)?;
    let config = DHnswConfig::paper().with_representatives(200);
    let store = VectorStore::build(data.clone(), &config)?;
    println!(
        "memory pool: {:.1} MB registered, {} partitions",
        store.remote_bytes() as f64 / 1e6,
        store.partitions()
    );

    for mode in [SearchMode::Full, SearchMode::NoDoorbell, SearchMode::Naive] {
        // Each instance gets an independent query stream.
        let nodes: Vec<_> = (0..INSTANCES)
            .map(|_| store.connect(mode))
            .collect::<Result<_, _>>()?;
        let streams: Vec<_> = (0..INSTANCES)
            .map(|i| {
                gen::perturbed_queries(&data, BATCH * BATCHES_PER_INSTANCE, 0.03, 100 + i as u64)
            })
            .collect::<Result<Vec<_>, _>>()?;

        let wall = Instant::now();
        let reports: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = nodes
                .iter()
                .zip(&streams)
                .map(|(node, stream)| {
                    s.spawn(move || {
                        let mut agg = dhnsw_repro::dhnsw::BatchReport::default();
                        for b in 0..BATCHES_PER_INSTANCE {
                            let batch = stream_slice(stream, b * BATCH, BATCH);
                            let (_, r) = node.query_batch(&batch, 10, 48).unwrap();
                            agg.merge(&r);
                        }
                        agg
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall_s = wall.elapsed().as_secs_f64();

        let queries: usize = reports.iter().map(|r| r.queries).sum();
        let net_us: f64 = reports.iter().map(|r| r.breakdown.network_us).sum();
        let trips: u64 = reports.iter().map(|r| r.round_trips).sum();
        let bytes: u64 = reports.iter().map(|r| r.bytes_read).sum();
        // Per-instance latency = its own virtual network time + its share
        // of measured compute; throughput = queries / max instance time.
        let max_total_us = reports
            .iter()
            .map(|r| r.breakdown.total_us())
            .fold(0.0f64, f64::max);
        println!(
            "{mode:<22} | {queries} q | {:>9.0} q/s (model) | net {:>10.0} us | {:>7} trips | {:>7.1} MB | wall {:.2}s",
            queries as f64 / (max_total_us / 1e6),
            net_us,
            trips,
            bytes as f64 / 1e6,
            wall_s,
        );
    }
    println!(
        "\nthroughput = queries / slowest-instance modeled time; wall time is host compute \
         (graph search + deserialization) and is the same workload across modes"
    );
    Ok(())
}

fn stream_slice(
    stream: &dhnsw_repro::vecsim::Dataset,
    start: usize,
    len: usize,
) -> dhnsw_repro::vecsim::Dataset {
    let ids: Vec<u32> = (start..start + len).map(|i| i as u32).collect();
    stream.select(&ids)
}
