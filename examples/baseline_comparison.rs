//! Side-by-side comparison of the paper's three schemes on one workload —
//! a miniature of Table 1, printed live.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use dhnsw_repro::dhnsw::{BatchReport, DHnswConfig, SearchMode, VectorStore};
use dhnsw_repro::vecsim::{gen, ground_truth, recall, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = gen::sift_like(20_000, 51)?;
    let queries = gen::perturbed_queries(&data, 500, 0.03, 52)?;
    let truth = ground_truth::exact_batch(&data, &queries, 1, Metric::L2);

    let config = DHnswConfig::paper().with_representatives(200);
    let store = VectorStore::build(data, &config)?;
    println!(
        "SIFT-like 20k, top-1, efSearch 48, batch {} | {} partitions, cache {} clusters\n",
        queries.len(),
        store.partitions(),
        config.cache_capacity(store.partitions())
    );
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>10} {:>12} {:>8}",
        "scheme", "network us", "sub-HNSW us", "meta us", "trips/q", "MB read", "recall"
    );

    let mut rows: Vec<(SearchMode, BatchReport, f64)> = Vec::new();
    for mode in [SearchMode::Naive, SearchMode::NoDoorbell, SearchMode::Full] {
        let node = store.connect(mode)?;
        // One warmup batch (steady-state caches, as the paper measures),
        // then the measured batch.
        node.query_batch(&queries, 1, 48)?;
        let (results, report) = node.query_batch(&queries, 1, 48)?;
        let ids: Vec<Vec<u32>> = results
            .iter()
            .map(|r| r.iter().map(|n| n.id).collect())
            .collect();
        let rec = recall::mean_recall(&ids, &truth);
        println!(
            "{:<24} {:>12.1} {:>12.1} {:>12.1} {:>10.4} {:>12.2} {:>8.3}",
            mode.name(),
            report.breakdown.network_us,
            report.breakdown.sub_hnsw_us,
            report.breakdown.meta_hnsw_us,
            report.round_trips_per_query(),
            report.bytes_read as f64 / 1e6,
            rec
        );
        rows.push((mode, report, rec));
    }

    // Context row: the monolithic (non-disaggregated) deployment the
    // paper's introduction argues against — the whole index lives in this
    // machine's DRAM, so there is no network at all, but the dataset must
    // fit locally and CPU/memory cannot scale independently.
    {
        use dhnsw_repro::hnsw::{HnswIndex, HnswParams};
        use std::time::Instant;
        let data = gen::sift_like(20_000, 51)?;
        let index = HnswIndex::build(data, &HnswParams::new(16, 100).seed(1))?;
        let t = Instant::now();
        let mut ids = Vec::with_capacity(queries.len());
        for q in queries.iter() {
            ids.push(
                index
                    .search(q, 1, 48)
                    .iter()
                    .map(|n| n.id)
                    .collect::<Vec<u32>>(),
            );
        }
        let us = t.elapsed().as_secs_f64() * 1e6;
        let rec = recall::mean_recall(&ids, &truth);
        println!(
            "{:<24} {:>12} {:>12.1} {:>12} {:>10} {:>12} {:>8.3}",
            "monolithic HNSW (local)", "-", us, "-", "0.0000", "0.00", rec
        );
    }

    let naive_net = rows[0].1.breakdown.network_us;
    let nodb_net = rows[1].1.breakdown.network_us;
    let full_net = rows[2].1.breakdown.network_us.max(1e-9);
    println!(
        "\nd-HNSW network speedup: {:.0}x vs naive, {:.2}x vs w/o doorbell \
         (paper: up to 117x and 1.12x on SIFT1M)",
        naive_net / full_net,
        nodb_net / full_net
    );
    Ok(())
}
