//! A retrieval-augmented-generation (RAG) shaped workload — the use case
//! the paper's introduction motivates: a document corpus embedded into
//! vectors, stored on disaggregated memory, queried by prompt embeddings.
//!
//! Documents are grouped into topics (a Gaussian mixture per topic);
//! prompts are embeddings near a topic centroid. The pipeline retrieves
//! top-k documents per prompt and checks that retrieved documents come
//! from the prompt's topic.
//!
//! ```text
//! cargo run --release --example rag_pipeline
//! ```

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_repro::vecsim::gen::GaussianMixture;
use dhnsw_repro::vecsim::Dataset;

const DIM: usize = 256; // embedding dimensionality
const TOPICS: usize = 24;
const DOCS: usize = 12_000;
const PROMPTS: usize = 64;
const TOP_K: usize = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Embed" a corpus: each document vector belongs to one topic.
    let (docs, topic_of) = GaussianMixture::new(DIM, TOPICS)
        .center_range(-1.0, 1.0)
        .cluster_std(0.12)
        .skew(0.5) // popular topics have more documents
        .generate(DOCS, 7)?;
    println!("corpus: {DOCS} documents x {DIM}d embeddings, {TOPICS} topics");

    // Index the corpus on the memory pool.
    let config = DHnswConfig::paper()
        .with_representatives(128)
        .with_fanout(4);
    let store = VectorStore::build(docs.clone(), &config)?;
    let node = store.connect(SearchMode::Full)?;
    println!(
        "indexed: {} partitions, {:.1} MB remote",
        store.partitions(),
        store.remote_bytes() as f64 / 1e6
    );

    // "Prompts": embeddings near existing documents (a user asking about
    // a known topic).
    let prompts = dhnsw_repro::vecsim::gen::perturbed_queries(&docs, PROMPTS, 0.03, 8)?;

    // Expected topic of each prompt = topic of its nearest document.
    let expected: Vec<u32> = (0..prompts.len())
        .map(|i| {
            let nn = dhnsw_repro::vecsim::ground_truth::exact(
                &docs,
                prompts.get(i),
                1,
                dhnsw_repro::vecsim::Metric::L2,
            );
            topic_of[nn[0].id as usize]
        })
        .collect();

    // Retrieve.
    let (retrieved, report) = node.query_batch(&prompts, TOP_K, 48)?;

    // Score: fraction of retrieved documents from the prompt's topic.
    let mut on_topic = 0usize;
    let mut total = 0usize;
    for (i, hits) in retrieved.iter().enumerate() {
        for h in hits {
            total += 1;
            if topic_of[h.id as usize] == expected[i] {
                on_topic += 1;
            }
        }
    }
    println!(
        "retrieval: {PROMPTS} prompts x top-{TOP_K}: {:.1}% of retrieved docs on-topic",
        100.0 * on_topic as f64 / total as f64
    );
    println!(
        "network: {} round trips, {:.2} MB, {:.1} us virtual; clusters loaded {} / demand {}",
        report.round_trips,
        report.bytes_read as f64 / 1e6,
        report.breakdown.network_us,
        report.clusters_loaded,
        report.raw_cluster_demand,
    );

    // Show one retrieval as a RAG context assembly.
    let sample = 0usize;
    let context: Vec<String> = retrieved[sample]
        .iter()
        .map(|h| format!("doc#{} (topic {}, dist {:.3})", h.id, topic_of[h.id as usize], h.dist))
        .collect();
    println!(
        "prompt #0 (topic {}): context = [{}]",
        expected[sample],
        context.join(", ")
    );

    // Incremental corpus growth: a freshly published document becomes
    // retrievable immediately via the overflow insert path.
    let new_doc: Vec<f32> = prompts.get(0).to_vec();
    let gid = node.insert(&new_doc)?;
    let again = node.query_batch(&Dataset::from_rows(&[prompts.get(0)])?, TOP_K, 48)?;
    let found = again.0[0].iter().any(|h| h.id == gid);
    println!("inserted doc#{gid}; retrieved on re-query: {found}");
    Ok(())
}
