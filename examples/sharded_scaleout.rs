//! Scale-out beyond one memory node: shard the corpus across several
//! memory instances, fan queries out, merge top-k — the deployment shape
//! for datasets that outgrow a single machine's DRAM (the problem the
//! paper's introduction opens with).
//!
//! ```text
//! cargo run --release --example sharded_scaleout
//! ```

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, ShardedStore};
use dhnsw_repro::vecsim::{gen, ground_truth, recall, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = gen::sift_like(24_000, 71)?;
    let queries = gen::perturbed_queries(&data, 200, 0.03, 72)?;
    let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
    let config = DHnswConfig::paper().with_representatives(64);

    println!(
        "{:>7} {:>12} {:>10} {:>14} {:>16} {:>12}",
        "shards", "remote MB", "recall", "max net us", "sum trips", "MB read"
    );
    for shards in [1usize, 2, 4, 8] {
        let store = ShardedStore::build(&data, &config, shards)?;
        let session = store.connect(SearchMode::Full)?;
        session.query_batch(&queries, 10, 48)?; // warm
        let (results, reports) = session.query_batch(&queries, 10, 48)?;

        let ids: Vec<Vec<u32>> = results
            .iter()
            .map(|r| r.iter().filter_map(|n| store.original_row(n.id)).collect())
            .collect();
        let rec = recall::mean_recall(&ids, &truth);
        // Shards are independent machines: their network times overlap,
        // so the batch's network latency is the slowest shard.
        let max_net = reports
            .iter()
            .map(|r| r.breakdown.network_us)
            .fold(0.0f64, f64::max);
        let trips: u64 = reports.iter().map(|r| r.round_trips).sum();
        let bytes: u64 = reports.iter().map(|r| r.bytes_read).sum();
        println!(
            "{shards:>7} {:>12.1} {:>10.3} {:>14.1} {:>16} {:>12.2}",
            store.remote_bytes() as f64 / 1e6,
            rec,
            max_net,
            trips,
            bytes as f64 / 1e6
        );
    }
    println!(
        "\neach shard is a full d-HNSW store (own meta-HNSW + layout) over a slice of the \
         corpus; queries fan out to every shard and per-shard top-k merge by distance"
    );

    // Inserts land on one shard and stay globally addressable.
    let store = ShardedStore::build(&data, &config, 4)?;
    let session = store.connect(SearchMode::Full)?;
    let new_vec = queries.get(0).to_vec();
    let gid = session.insert(&new_vec)?;
    let (shard, local) = dhnsw_repro::dhnsw::sharded::split_id(gid);
    let hit = session.query(&new_vec, 1, 32)?;
    println!(
        "insert -> shard {shard}, local id {local}; re-query found id {} at distance {:.3}",
        hit[0].id, hit[0].dist
    );
    Ok(())
}
