//! Quickstart: build a d-HNSW store over a SIFT-like dataset, run a batch
//! of top-10 queries, and print what moved over the (simulated) fabric.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_repro::vecsim::{gen, ground_truth, recall, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic stand-in for SIFT1M: 20k 128-d clustered vectors.
    let n = 20_000;
    let data = gen::sift_like(n, 42)?;
    let queries = gen::perturbed_queries(&data, 256, 0.03, 43)?;
    println!("dataset: {} vectors x {}d (SIFT-like)", data.len(), data.dim());

    // 2. Exact ground truth for recall scoring.
    let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);

    // 3. Build the store: meta-HNSW + partitioned sub-HNSWs laid out in
    //    remote registered memory.
    let config = DHnswConfig::paper().with_representatives(200);
    let store = VectorStore::build(data, &config)?;
    println!(
        "store: {} partitions, {:.1} MB remote, meta-HNSW {:.3} MB cached locally",
        store.partitions(),
        store.remote_bytes() as f64 / 1e6,
        store.meta().footprint_bytes() as f64 / 1e6,
    );

    // 4. Connect a compute instance and answer the batch.
    let node = store.connect(SearchMode::Full)?;
    let (results, report) = node.query_batch(&queries, 10, 48)?;

    let ids: Vec<Vec<u32>> = results
        .iter()
        .map(|r| r.iter().map(|x| x.id).collect())
        .collect();
    println!(
        "batch of {}: recall@10 = {:.3}",
        report.queries,
        recall::mean_recall(&ids, &truth)
    );
    println!(
        "network: {} round trips ({:.4} per query), {:.2} MB read, {:.1} us virtual time",
        report.round_trips,
        report.round_trips_per_query(),
        report.bytes_read as f64 / 1e6,
        report.breakdown.network_us
    );
    println!(
        "clusters: demand {} -> unique {} -> loaded {} (cache hits {})",
        report.raw_cluster_demand,
        report.unique_clusters,
        report.clusters_loaded,
        report.cache_hits
    );
    println!(
        "latency/query: {:.2} us (network {:.2}, sub-HNSW {:.2}, meta {:.2})",
        report.per_query_latency_us(),
        report.breakdown.network_us / report.queries as f64,
        report.breakdown.sub_hnsw_us / report.queries as f64,
        report.breakdown.meta_hnsw_us / report.queries as f64,
    );

    // 5. A second, warm batch: the LRU cluster cache absorbs repeats.
    let (_, warm) = node.query_batch(&queries, 10, 48)?;
    println!(
        "warm batch: {} loads, {} cache hits, {:.1} us network",
        warm.clusters_loaded, warm.cache_hits, warm.breakdown.network_us
    );
    Ok(())
}
