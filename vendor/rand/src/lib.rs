//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` with this vendored shim. It implements exactly the
//! deterministic subset the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], and [`Rng::gen_range`]
//! over integer and float ranges — with a fixed, portable PRNG
//! (xoshiro256** seeded via SplitMix64), so seeded runs reproduce across
//! platforms and releases.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable random generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                let r = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                lo.wrapping_add(r as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                let r = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                lo.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi.max(lo + f64::EPSILON))
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi.max(lo + f32::EPSILON))
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits to a float in `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draws uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded by SplitMix64 expansion of the 64-bit seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_runs_reproduce() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: usize = rng.gen_range(0..=4);
            assert!(z <= 4);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
