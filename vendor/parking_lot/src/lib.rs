//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no crates.io access, so the workspace
//! patches `parking_lot` with this shim over `std::sync` primitives. It
//! reproduces the API surface the workspace relies on: `lock()` /
//! `read()` / `write()` returning guards directly (no `Result`), and no
//! lock poisoning — a panic while holding a lock does not wedge later
//! users.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
