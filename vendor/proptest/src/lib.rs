//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! patches `proptest` with this shim. It keeps the macro surface the
//! workspace's property tests use — `proptest! { #[test] fn f(x in
//! strategy, ...) { ... } }`, `prop::collection::vec`, `any::<T>()`,
//! numeric-range strategies, `prop_assert!` / `prop_assert_eq!`, and
//! `ProptestConfig::with_cases` — backed by a deterministic per-test
//! PRNG rather than shrinking case exploration. Failures report the
//! case number so a failing input can be re-derived deterministically.

#![forbid(unsafe_code)]

/// Per-property configuration (the `cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic test-case generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the property's name, so every property
    /// has a stable, independent stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

/// A value generator: the (non-shrinking) core of a proptest strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Full-domain values for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy combinators, mirroring the `prop` module paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// Vectors of `elem` values with length in `size` (half-open).
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }
    }
}

/// Everything the `proptest!` macro and its call sites need.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares deterministic randomized property tests.
///
/// Supports the `#![proptest_config(...)]` header and any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let run = || {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                };
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest: property {} failed at case {}/{}",
                        stringify!($name), case + 1, cfg.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 3usize..10, v in prop::collection::vec(0u32..5, 1..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_any_work(pair in (any::<u32>(), -1f32..1.0)) {
            let (_id, f) = pair;
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }
}
