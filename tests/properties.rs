//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary data, not just the fixtures the unit tests pick.

use proptest::prelude::*;

use dhnsw_repro::dhnsw::cluster::{
    parse_overflow, parse_overflow_detailed, OverflowRecord, SubCluster,
};
use dhnsw_repro::dhnsw::layout::Directory;
use dhnsw_repro::hnsw::{serialize, HnswIndex, HnswParams};
use dhnsw_repro::vecsim::{Dataset, Metric, TopK};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The grouped layout never overlaps: every cluster span and every
    /// overflow area occupies disjoint bytes (except the deliberate
    /// sharing of one overflow area by the two clusters of a group).
    #[test]
    fn directory_plan_never_overlaps(
        sizes in prop::collection::vec(1u64..5_000, 1..40),
        dim in 1usize..64,
        slots in 0usize..16,
    ) {
        let dir = Directory::plan(&sizes, dim, slots).unwrap();
        // Collect (start, end, tag) intervals: clusters individually,
        // overflow areas once per group.
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        let mut seen_overflows = std::collections::HashSet::new();
        for loc in dir.locations() {
            intervals.push((loc.cluster_off, loc.cluster_off + loc.cluster_len));
            if seen_overflows.insert(loc.overflow_off) {
                intervals.push((loc.overflow_off, loc.overflow_off + loc.overflow_len));
            }
            prop_assert!(loc.cluster_off + loc.cluster_len <= dir.total_len());
        }
        intervals.sort();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
    }

    /// Every planned offset stays 8-aligned regardless of cluster sizes.
    #[test]
    fn directory_alignment_holds_for_any_sizes(
        sizes in prop::collection::vec(1u64..10_000, 1..30),
    ) {
        let dir = Directory::plan(&sizes, 7, 3).unwrap();
        for loc in dir.locations() {
            prop_assert_eq!(loc.cluster_off % 8, 0);
            prop_assert_eq!(loc.overflow_off % 8, 0);
        }
    }

    /// Directory serialization round-trips for arbitrary shapes.
    #[test]
    fn directory_bytes_round_trip(
        sizes in prop::collection::vec(1u64..100_000, 1..50),
        dim in 1usize..512,
        slots in 0usize..64,
    ) {
        let mut dir = Directory::plan(&sizes, dim, slots).unwrap();
        dir.set_next_id(sizes.len() as u64 * 7);
        let back = Directory::from_bytes(&dir.to_bytes()).unwrap();
        prop_assert_eq!(back, dir);
    }

    /// Overflow records survive encoding for any dimension and payload.
    #[test]
    fn overflow_record_round_trips(
        partition in any::<u32>(),
        global_id in any::<u32>(),
        vector in prop::collection::vec(-1e6f32..1e6, 1..80),
    ) {
        // Partition ids carry a tombstone flag in the top bit on the
        // wire, so the round-trippable domain excludes it.
        let partition = partition & !dhnsw_repro::dhnsw::cluster::TOMBSTONE_BIT;
        let r = OverflowRecord::insert(partition, global_id, vector);
        let dim = r.vector.len();
        let bytes = r.to_bytes();
        prop_assert_eq!(bytes.len() % 8, 0);
        let back = OverflowRecord::from_bytes(&bytes, dim).unwrap();
        prop_assert_eq!(back.clone(), r);
        // And the tombstone variant round-trips its flag.
        let t = OverflowRecord::tombstone(partition, global_id, dim);
        let back_t = OverflowRecord::from_bytes(&t.to_bytes(), dim).unwrap();
        prop_assert!(back_t.tombstone);
        prop_assert_eq!(back_t.partition, partition);
    }

    /// A packed overflow area parses back to exactly the records written,
    /// for any record count within capacity.
    #[test]
    fn overflow_area_round_trips(
        dim in 1usize..16,
        count in 0usize..10,
        extra_capacity in 0usize..5,
    ) {
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + (count + extra_capacity) * rec];
        let records: Vec<OverflowRecord> = (0..count)
            .map(|i| {
                OverflowRecord::insert(
                    i as u32 % 3,
                    1_000 + i as u32,
                    (0..dim).map(|j| (i * dim + j) as f32).collect(),
                )
            })
            .collect();
        for (i, r) in records.iter().enumerate() {
            area[8 + i * rec..8 + (i + 1) * rec].copy_from_slice(&r.to_bytes());
        }
        area[0..8].copy_from_slice(&((count * rec) as u64).to_le_bytes());
        let got = parse_overflow(&area, dim).unwrap();
        prop_assert_eq!(got, records);
    }

    /// Decoding arbitrarily truncated or bit-flipped overflow bytes never
    /// panics: damage is skipped (commit marker / checksum) or rejected
    /// as `Corrupt`, never a crash.
    #[test]
    fn overflow_decode_survives_truncation_and_bit_flips(
        dim in 1usize..16,
        count in 1usize..8,
        cut in any::<usize>(),
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + count * rec];
        for i in 0..count {
            let r = OverflowRecord::insert(i as u32, 100 + i as u32, vec![1.5; dim]);
            area[8 + i * rec..8 + (i + 1) * rec].copy_from_slice(&r.to_bytes());
        }
        area[0..8].copy_from_slice(&((count * rec) as u64).to_le_bytes());
        // Truncation at any point must not panic.
        let cut_at = cut % (area.len() + 1);
        let _ = parse_overflow(&area[..cut_at], dim);
        let _ = OverflowRecord::from_bytes(&area[8..], dim);
        // Neither must a single bit flip anywhere; the checksum or the
        // commit marker downgrades the damaged slot instead.
        let pos = flip % area.len();
        area[pos] ^= 1 << bit;
        let _ = parse_overflow(&area, dim);
    }

    /// A torn slot — reserved by the FAA but never written, so all-zero —
    /// hides that one record and nothing else.
    #[test]
    fn torn_slots_are_skipped_not_fatal(
        dim in 1usize..12,
        count in 2usize..8,
        torn in any::<usize>(),
    ) {
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + count * rec];
        for i in 0..count {
            let r = OverflowRecord::insert(i as u32 % 3, 100 + i as u32, vec![2.5; dim]);
            area[8 + i * rec..8 + (i + 1) * rec].copy_from_slice(&r.to_bytes());
        }
        area[0..8].copy_from_slice(&((count * rec) as u64).to_le_bytes());
        let torn_at = torn % count;
        area[8 + torn_at * rec..8 + (torn_at + 1) * rec].fill(0);
        let (got, skipped) = parse_overflow_detailed(&area, dim).unwrap();
        prop_assert_eq!(skipped, 1);
        prop_assert_eq!(got.len(), count - 1);
        prop_assert!(got.iter().all(|r| r.global_id != 100 + torn_at as u32));
    }

    /// HNSW serialization round-trips and searches identically for
    /// arbitrary (small) datasets.
    #[test]
    fn hnsw_blob_round_trip_preserves_search(
        rows in prop::collection::vec(
            prop::collection::vec(-100f32..100.0, 6..7), 2..60),
        seed in any::<u64>(),
    ) {
        let data = Dataset::from_rows(&rows).unwrap();
        let idx = HnswIndex::build(data, &HnswParams::new(4, 20).seed(seed)).unwrap();
        let back = serialize::from_bytes(&serialize::to_bytes(&idx)).unwrap();
        let q = vec![0.0f32; 6];
        prop_assert_eq!(idx.search(&q, 5, 16), back.search(&q, 5, 16));
    }

    /// HNSW always returns min(k, n) unique, sorted results and always
    /// contains the exact nearest neighbour when ef is generous.
    #[test]
    fn hnsw_result_invariants(
        rows in prop::collection::vec(
            prop::collection::vec(0f32..1.0, 4..5), 1..80),
        qx in 0f32..1.0,
        k in 1usize..10,
    ) {
        let data = Dataset::from_rows(&rows).unwrap();
        let n = data.len();
        let idx = HnswIndex::build(data.clone(), &HnswParams::new(8, 64).seed(1)).unwrap();
        let q = vec![qx; 4];
        let out = idx.search(&q, k, 64.max(n));
        prop_assert_eq!(out.len(), k.min(n));
        let mut ids: Vec<u32> = out.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), out.len(), "duplicate results");
        for w in out.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        // With ef >= n the beam covers the connected graph: the true
        // nearest must be present.
        let exact = dhnsw_repro::vecsim::ground_truth::exact(&data, &q, 1, Metric::L2);
        prop_assert!(out.iter().any(|o| (o.dist - exact[0].dist).abs() < 1e-5),
            "exact nearest missing: {:?} not in {:?}", exact[0], out);
    }

    /// TopK matches a sort-based oracle for arbitrary candidate streams.
    #[test]
    fn topk_matches_sorting_oracle(
        cands in prop::collection::vec((any::<u32>(), -1e9f32..1e9), 0..200),
        k in 0usize..20,
    ) {
        let mut top = TopK::new(k);
        for &(id, d) in &cands {
            top.push(id, d);
        }
        let got = top.into_sorted_vec();

        let mut oracle: Vec<_> = cands
            .iter()
            .map(|&(id, d)| dhnsw_repro::vecsim::Neighbor::new(id, d))
            .collect();
        oracle.sort();
        oracle.dedup(); // duplicate (id, dist) pairs may collapse either way
        let mut expect = oracle;
        expect.truncate(k);

        // Compare only distances (ties among equal distances may pick
        // different ids when duplicates exist in the stream).
        let got_d: Vec<f32> = got.iter().map(|n| n.dist).collect();
        let exp_d: Vec<f32> = expect.iter().map(|n| n.dist).collect();
        prop_assert_eq!(got_d.len(), exp_d.len().min(k));
        for (g, e) in got_d.iter().zip(&exp_d) {
            prop_assert!(g.total_cmp(e).is_eq() || (g - e).abs() < 1e-9);
        }
    }

    /// Cluster serialization round-trips for arbitrary partition content.
    #[test]
    fn sub_cluster_round_trips(
        rows in prop::collection::vec(
            prop::collection::vec(0f32..255.0, 8..9), 1..40),
        partition in any::<u32>(),
    ) {
        let data = Dataset::from_rows(&rows).unwrap();
        let ids: Vec<u32> = (0..data.len() as u32).map(|i| i * 3 + 11).collect();
        let c = SubCluster::build(partition, data, ids, &HnswParams::new(4, 16).seed(2)).unwrap();
        let back = SubCluster::from_bytes(&c.to_bytes()).unwrap();
        prop_assert_eq!(back.partition(), c.partition());
        prop_assert_eq!(back.global_ids(), c.global_ids());
        let q = vec![64.0f32; 8];
        prop_assert_eq!(back.search(&q, 3, 16), c.search(&q, 3, 16));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot subtraction is exact set difference for monotone
    /// histograms: for an arbitrary sample stream split at an
    /// arbitrary point, the window between the two snapshots accounts
    /// for exactly the samples after the split —
    /// `a.sub(b).count + b.count == a.count` (and the same for sums).
    /// The series recorder's windowed quantiles lean on this.
    #[test]
    fn histogram_snapshot_sub_is_exact_for_monotone_histograms(
        samples in prop::collection::vec(0u64..5_000_000, 1..120),
        split_at in any::<usize>(),
    ) {
        use dhnsw_repro::dhnsw::telemetry::Histogram;
        let split = split_at % (samples.len() + 1);
        let h = Histogram::default();
        for &s in &samples[..split] {
            h.observe(s);
        }
        let b = h.snapshot();
        for &s in &samples[split..] {
            h.observe(s);
        }
        let a = h.snapshot();
        let window = a - b;
        prop_assert_eq!(window.count() + b.count(), a.count());
        prop_assert_eq!(window.sum() + b.sum(), a.sum());
        prop_assert_eq!(window.count() as usize, samples.len() - split);
        // A window quantile never exceeds the lifetime maximum.
        if window.count() > 0 {
            prop_assert!(window.quantile(1.0) <= a.quantile(1.0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end: for arbitrary clustered datasets the full d-HNSW stack
    /// answers with valid ids and reasonable hit quality on self-queries.
    #[test]
    fn store_self_queries_find_themselves(
        n in 100usize..400,
        seed in 0u64..1_000,
    ) {
        use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
        use dhnsw_repro::vecsim::gen;
        let data = gen::sift_like(n, seed).unwrap();
        let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        let mut hits = 0;
        let total = 10.min(n);
        for i in 0..total {
            let out = node.query(data.get(i * (n / total)), 1, 32).unwrap();
            prop_assert!(!out.is_empty());
            prop_assert!((out[0].id as usize) < n);
            if out[0].dist == 0.0 {
                hits += 1;
            }
        }
        prop_assert!(hits * 2 >= total, "only {hits}/{total} self-queries hit");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The pipelined executor is an exact refinement of the sequential
    /// planned path: for arbitrary batch sizes, pipeline depths, and
    /// cache capacities — including a zero-capacity cache, where every
    /// cluster reloads every batch — it returns identical `(ids, dists)`
    /// and identical `unique_clusters` / `bytes_read` accounting.
    /// Pipelining may only change the schedule, never the answer.
    #[test]
    fn pipelined_path_is_equivalent_to_planned(
        n in 150usize..400,
        seed in 0u64..500,
        batch in 1usize..24,
        depth in 1usize..8,
        cache_quarters in 0usize..=4,
        warm in any::<bool>(),
    ) {
        use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
        use dhnsw_repro::vecsim::gen;
        let data = gen::sift_like(n, seed).unwrap();
        // cache_quarters = 0 gives cache_capacity(..) == 0, the
        // `ClusterCache::new(0)` degenerate case.
        let cfg = DHnswConfig::small()
            .with_cache_fraction(cache_quarters as f64 * 0.25);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let queries = gen::perturbed_queries(&data, batch, 0.02, seed ^ 0xABCD).unwrap();
        let seq = store.connect(SearchMode::Full).unwrap();
        let pipe = store.connect(SearchMode::Full).unwrap();
        pipe.set_pipeline_depth(depth);
        if warm {
            // A warm-up batch on both nodes exercises the cached-pin
            // verify path (stage 0 revalidates resident versions).
            seq.query_batch(&queries, 5, 24).unwrap();
            pipe.query_batch(&queries, 5, 24).unwrap();
        }
        let (ra, pa) = seq.query_batch(&queries, 5, 24).unwrap();
        let (rb, pb) = pipe.query_batch(&queries, 5, 24).unwrap();
        prop_assert_eq!(ra, rb, "pipelining changed results");
        prop_assert_eq!(pa.unique_clusters, pb.unique_clusters);
        prop_assert_eq!(pa.bytes_read, pb.bytes_read);
        prop_assert_eq!(pa.cache_hits, pb.cache_hits);
        prop_assert_eq!(pa.clusters_loaded, pb.clusters_loaded);
    }
}
