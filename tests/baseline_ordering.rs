//! Integration tests for the paper's headline performance claims: the
//! *ordering* (and rough magnitude) of network cost across the three
//! schemes, and the behaviour of the knobs the evaluation sweeps.

use dhnsw_repro::dhnsw::{BatchReport, DHnswConfig, SearchMode, VectorStore};
use dhnsw_repro::rdma_sim::NetworkModel;
use dhnsw_repro::vecsim::{gen, Dataset};

fn run_batch(
    store: &VectorStore,
    mode: SearchMode,
    queries: &Dataset,
    warm: bool,
) -> BatchReport {
    let node = store.connect(mode).unwrap();
    if warm {
        node.query_batch(queries, 10, 32).unwrap();
    }
    let (_, report) = node.query_batch(queries, 10, 32).unwrap();
    report
}

fn workload(n: usize, q: usize) -> (Dataset, Dataset) {
    let data = gen::sift_like(n, 41).unwrap();
    let queries = gen::perturbed_queries(&data, q, 0.05, 42).unwrap();
    (data, queries)
}

#[test]
fn network_latency_ordering_naive_nodoorbell_full() {
    let (data, queries) = workload(2_000, 200);
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let naive = run_batch(&store, SearchMode::Naive, &queries, false);
    let nodb = run_batch(&store, SearchMode::NoDoorbell, &queries, false);
    let full = run_batch(&store, SearchMode::Full, &queries, false);

    assert!(
        full.breakdown.network_us <= nodb.breakdown.network_us,
        "full {} vs no-doorbell {}",
        full.breakdown.network_us,
        nodb.breakdown.network_us
    );
    assert!(
        nodb.breakdown.network_us < naive.breakdown.network_us,
        "no-doorbell {} vs naive {}",
        nodb.breakdown.network_us,
        naive.breakdown.network_us
    );
    // The paper's headline: ~two orders of magnitude vs naive at batch
    // scale. Even cold at this reduced scale the factor is large.
    let factor = naive.breakdown.network_us / full.breakdown.network_us;
    assert!(factor > 5.0, "naive/full network factor only {factor:.1}x");
}

#[test]
fn round_trips_per_query_ordering_matches_table1() {
    let (data, queries) = workload(2_000, 200);
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let naive = run_batch(&store, SearchMode::Naive, &queries, false);
    let nodb = run_batch(&store, SearchMode::NoDoorbell, &queries, false);
    let full = run_batch(&store, SearchMode::Full, &queries, false);

    // Table 1 ordering: naive (3.5) > w/o doorbell (0.9) >> d-HNSW (4.7e-3).
    assert!(naive.round_trips_per_query() > nodb.round_trips_per_query());
    assert!(nodb.round_trips_per_query() > full.round_trips_per_query() * 4.0);
    // Naive issues exactly b reads per query.
    assert_eq!(
        naive.round_trips,
        (queries.len() * store.config().fanout()) as u64
    );
}

#[test]
fn bigger_batches_amortize_better() {
    let (data, _) = workload(2_000, 1);
    let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
    let small_q = gen::perturbed_queries(&data, 20, 0.05, 43).unwrap();
    let large_q = gen::perturbed_queries(&data, 400, 0.05, 43).unwrap();
    let small = run_batch(&store, SearchMode::Full, &small_q, false);
    let large = run_batch(&store, SearchMode::Full, &large_q, false);
    assert!(
        large.round_trips_per_query() < small.round_trips_per_query(),
        "batching gives no amortization: {} vs {}",
        large.round_trips_per_query(),
        small.round_trips_per_query()
    );
}

#[test]
fn warm_cache_eliminates_repeat_traffic_for_full_but_not_naive() {
    let (data, queries) = workload(1_500, 60);
    let store = VectorStore::build(
        data,
        &DHnswConfig::small().with_cache_fraction(1.0),
    )
    .unwrap();
    let full_warm = run_batch(&store, SearchMode::Full, &queries, true);
    let naive_warm = run_batch(&store, SearchMode::Naive, &queries, true);
    assert_eq!(full_warm.round_trips, 0);
    assert!(naive_warm.round_trips > 0);
}

#[test]
fn doorbell_limit_sweep_shows_the_scalability_tradeoff() {
    let (data, queries) = workload(2_000, 120);
    let mut trips = Vec::new();
    for limit in [1usize, 4, 16, 64] {
        let cfg = DHnswConfig::small()
            .with_network(NetworkModel::connectx6().with_doorbell_limit(limit).unwrap());
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let report = run_batch(&store, SearchMode::Full, &queries, false);
        trips.push(report.round_trips);
    }
    // Larger doorbells strictly consolidate round trips.
    assert!(trips.windows(2).all(|w| w[0] >= w[1]), "{trips:?}");
    assert!(trips[0] > trips[3], "{trips:?}");
}

#[test]
fn cache_fraction_sweep_reduces_loads() {
    let (data, queries) = workload(2_000, 120);
    let mut loads = Vec::new();
    for frac in [0.0, 0.1, 0.5, 1.0] {
        let cfg = DHnswConfig::small().with_cache_fraction(frac);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        node.query_batch(&queries, 10, 32).unwrap(); // warm
        let (_, second) = node.query_batch(&queries, 10, 32).unwrap();
        loads.push(second.clusters_loaded);
    }
    assert!(
        loads.windows(2).all(|w| w[0] >= w[1]),
        "warm loads should fall with cache size: {loads:?}"
    );
    assert_eq!(loads[3], 0, "full cache must absorb everything");
}

#[test]
fn fanout_sweep_trades_bytes_for_recall() {
    let (data, queries) = workload(2_000, 60);
    let mut bytes = Vec::new();
    for b in [1usize, 2, 4, 8] {
        let store =
            VectorStore::build(data.clone(), &DHnswConfig::small().with_fanout(b)).unwrap();
        let report = run_batch(&store, SearchMode::Full, &queries, false);
        bytes.push(report.bytes_read);
    }
    assert!(
        bytes.windows(2).all(|w| w[0] <= w[1]),
        "bytes should grow with fanout: {bytes:?}"
    );
}

#[test]
fn slower_fabric_slows_everything_proportionally() {
    let (data, queries) = workload(1_200, 60);
    let fast_cfg = DHnswConfig::small().with_network(NetworkModel::connectx6());
    let slow_cfg = DHnswConfig::small().with_network(NetworkModel::roce25());
    let fast_store = VectorStore::build(data.clone(), &fast_cfg).unwrap();
    let slow_store = VectorStore::build(data, &slow_cfg).unwrap();
    let fast = run_batch(&fast_store, SearchMode::Full, &queries, false);
    let slow = run_batch(&slow_store, SearchMode::Full, &queries, false);
    assert!(slow.breakdown.network_us > fast.breakdown.network_us * 2.0);
    // Same logical work either way.
    assert_eq!(slow.bytes_read, fast.bytes_read);
    assert_eq!(slow.round_trips, fast.round_trips);
}

#[test]
fn per_batch_demand_dedup_matches_fig5_semantics() {
    let (data, queries) = workload(1_500, 300);
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let node = store.connect(SearchMode::Full).unwrap();
    let (_, report) = node.query_batch(&queries, 10, 32).unwrap();
    // 300 queries × b demand, but only <= partitions unique loads.
    assert_eq!(
        report.raw_cluster_demand,
        queries.len() * store.config().fanout()
    );
    assert!(report.unique_clusters <= store.partitions());
    assert!(report.clusters_loaded <= report.unique_clusters);
    assert!(report.raw_cluster_demand > report.unique_clusters);
}
