//! Seeded fault-rate ramp → retry-storm anomaly → why-slow linkage.
//!
//! End-to-end contract for the time-series layer: a node serving a
//! steady pinned-seed workload establishes an anomaly-free baseline;
//! ramping the substrate fault rate (with retransmissions disabled)
//! makes engine-level read retries storm, and the recorder must flag
//! that as a `retries_per_s` anomaly whose record links a retained
//! tail exemplar's trace id — so the alert lands with a concrete
//! `/whyslow/<id>` diagnosis attached. Ticks are synthetic
//! throughout: the recorder never reads the wall clock.

use std::sync::Arc;

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, Telemetry, VectorStore};
use dhnsw_repro::vecsim::gen;

#[test]
fn fault_ramp_fires_retry_anomaly_linking_an_exemplar() {
    let data = gen::sift_like(600, 31).unwrap();
    let cfg = DHnswConfig::small().with_degraded_ok(true);
    let store = VectorStore::build(data.clone(), &cfg).unwrap();
    let queries = gen::perturbed_queries(&data, 16, 0.02, 32).unwrap();
    let telemetry = Arc::new(Telemetry::new());
    let node = store
        .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
        .unwrap();

    // Baseline: twelve identical cold rounds, one synthetic tick (one
    // virtual second) per round. No retries anywhere, so the detector
    // warms up on a steady, anomaly-free workload.
    let mut t_us = 0u64;
    node.sample_series(t_us);
    for _ in 0..12 {
        node.drop_cache();
        node.query_batch(&queries, 5, 32).unwrap();
        t_us += 1_000_000;
        node.sample_series(t_us);
    }
    assert_eq!(
        telemetry.series().anomaly_count(),
        0,
        "steady baseline must be anomaly-free: {:?}",
        telemetry.series().anomalies()
    );

    // Ramp: no retransmissions plus a 50% seeded drop rate maps every
    // fault onto an engine-level read retry.
    node.queue_pair().set_retry_limit(0);
    node.queue_pair().set_fault_rate(0.5, 0xD16E);
    for _ in 0..2 {
        node.drop_cache();
        node.query_batch(&queries, 5, 32).unwrap();
        t_us += 1_000_000;
        node.sample_series(t_us);
    }

    let records = telemetry.series().anomalies();
    assert!(
        telemetry.series().anomaly_count() >= 1,
        "retry storm produced no anomaly; points: {:?}",
        telemetry.series().points()
    );
    let storm = records
        .iter()
        .find(|r| r.series == "retries_per_s")
        .unwrap_or_else(|| panic!("no retries_per_s anomaly in {records:?}"));
    assert!(storm.deterministic, "retries/s is a deterministic series");
    assert!(
        storm.value > storm.mean,
        "storm value {} should exceed baseline {}",
        storm.value,
        storm.mean
    );

    // The record links the slowest retained exemplar, and that trace
    // id resolves to a real why-slow diagnosis.
    let trace_id = storm.exemplar.expect("anomaly must link an exemplar");
    let ex = telemetry.exemplars();
    assert!(
        ex.lookup(trace_id).is_some(),
        "linked trace id {trace_id} is not retained"
    );
    let whyslow = ex
        .whyslow_json(trace_id)
        .expect("linked exemplar must diagnose");
    assert!(whyslow.contains("\"trace_id\""), "diagnosis: {whyslow}");

    // The firing also surfaced as a labelled counter.
    let prom = telemetry.render_prometheus();
    assert!(
        prom.contains("dhnsw_anomaly_total{series=\"retries_per_s\"}"),
        "missing anomaly counter:\n{prom}"
    );
}
