//! End-to-end integration tests: build a store on paper-shaped workloads
//! and validate recall, mode equivalence, and insert visibility through
//! the whole stack (vecsim → hnsw → rdma-sim → dhnsw).

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_repro::vecsim::{gen, ground_truth, recall, Dataset, Metric};

fn recall_of(
    store: &VectorStore,
    mode: SearchMode,
    queries: &Dataset,
    truth: &[Vec<dhnsw_repro::vecsim::Neighbor>],
    k: usize,
    ef: usize,
) -> f64 {
    let node = store.connect(mode).unwrap();
    let (results, _) = node.query_batch(queries, k, ef).unwrap();
    let ids: Vec<Vec<u32>> = results
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect();
    recall::mean_recall(&ids, truth)
}

#[test]
fn sift_like_recall_is_in_the_papers_band() {
    let data = gen::sift_like(4_000, 1).unwrap();
    let queries = gen::perturbed_queries(&data, 100, 0.02, 2).unwrap();
    let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
    let store = VectorStore::build(data, &DHnswConfig::small().with_fanout(4)).unwrap();

    let r = recall_of(&store, SearchMode::Full, &queries, &truth, 10, 48);
    assert!(r > 0.75, "top-10 recall {r} below the paper's band");
}

#[test]
fn gist_like_store_works_at_high_dimension() {
    let data = gen::gist_like(800, 3).unwrap();
    let queries = gen::perturbed_queries(&data, 20, 0.02, 4).unwrap();
    let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let r = recall_of(&store, SearchMode::Full, &queries, &truth, 10, 48);
    assert!(r > 0.7, "GIST-like recall {r}");
}

#[test]
fn recall_rises_with_ef_search() {
    // Hard queries (8% noise) so the beam width actually matters; ef is
    // clamped up to k, so the sweep runs from ef = k upward.
    let data = gen::sift_like(3_000, 5).unwrap();
    let queries = gen::perturbed_queries(&data, 100, 0.08, 6).unwrap();
    let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();

    let r_lo = recall_of(&store, SearchMode::Full, &queries, &truth, 10, 10);
    let r_hi = recall_of(&store, SearchMode::Full, &queries, &truth, 10, 128);
    assert!(
        r_hi + 0.01 >= r_lo,
        "efSearch 128 recall {r_hi} < efSearch 10 recall {r_lo}"
    );
    assert!(r_hi > 0.55, "high-ef recall {r_hi} too low for 8% noise");
}

#[test]
fn all_three_modes_return_identical_answers_cold() {
    let data = gen::sift_like(1_500, 7).unwrap();
    let queries = gen::perturbed_queries(&data, 24, 0.03, 8).unwrap();
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let truth = |mode| {
        let node = store.connect(mode).unwrap();
        node.query_batch(&queries, 10, 32).unwrap().0
    };
    let full = truth(SearchMode::Full);
    assert_eq!(full, truth(SearchMode::NoDoorbell));
    assert_eq!(full, truth(SearchMode::Naive));
}

#[test]
fn top1_is_a_prefix_of_top10() {
    let data = gen::sift_like(1_200, 9).unwrap();
    let queries = gen::perturbed_queries(&data, 16, 0.02, 10).unwrap();
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let node = store.connect(SearchMode::Full).unwrap();
    let (top10, _) = node.query_batch(&queries, 10, 48).unwrap();
    node.drop_cache();
    let (top1, _) = node.query_batch(&queries, 1, 48).unwrap();
    for (a, b) in top1.iter().zip(&top10) {
        assert_eq!(a[0], b[0]);
    }
}

#[test]
fn inserted_vectors_join_the_search_space_everywhere() {
    let data = gen::sift_like(1_000, 11).unwrap();
    let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
    let writer = store.connect(SearchMode::Full).unwrap();

    // Insert perturbed copies of existing vectors.
    let inserts = gen::perturbed_queries(&data, 10, 0.01, 12).unwrap();
    let mut gids = Vec::new();
    for v in inserts.iter() {
        gids.push(writer.insert(v).unwrap());
    }

    // Every mode on a fresh node sees them.
    for mode in [SearchMode::Full, SearchMode::NoDoorbell, SearchMode::Naive] {
        let node = store.connect(mode).unwrap();
        for (i, v) in inserts.iter().enumerate() {
            let hits = node.query(v, 1, 32).unwrap();
            assert_eq!(hits[0].id, gids[i], "{mode}: insert {i} not found");
        }
    }
}

#[test]
fn mixed_insert_and_query_workload_stays_consistent() {
    let data = gen::sift_like(800, 13).unwrap();
    let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
    let node = store.connect(SearchMode::Full).unwrap();

    let batch = gen::perturbed_queries(&data, 8, 0.02, 14).unwrap();
    for round in 0..5u64 {
        let v = gen::perturbed_queries(&data, 1, 0.01, 100 + round).unwrap();
        let gid = node.insert(v.get(0)).unwrap();
        let hits = node.query(v.get(0), 1, 32).unwrap();
        assert_eq!(hits[0].id, gid, "round {round}");
        let (results, _) = node.query_batch(&batch, 5, 16).unwrap();
        assert!(results.iter().all(|r| r.len() == 5));
    }
}

#[test]
fn meta_footprint_is_orders_of_magnitude_below_store() {
    let data = gen::sift_like(5_000, 15).unwrap();
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let meta_bytes = store.meta().footprint_bytes() as u64;
    assert!(
        meta_bytes * 10 < store.remote_bytes(),
        "meta {meta_bytes} vs remote {}",
        store.remote_bytes()
    );
}

#[test]
fn cosine_metric_works_end_to_end() {
    let data = gen::gist_like(600, 17).unwrap();
    let queries = gen::perturbed_queries(&data, 12, 0.02, 18).unwrap();
    let truth = ground_truth::exact_batch(&data, &queries, 5, Metric::Cosine);
    let store =
        VectorStore::build(data, &DHnswConfig::small().with_metric(Metric::Cosine)).unwrap();
    let r = recall_of(&store, SearchMode::Full, &queries, &truth, 5, 48);
    assert!(r > 0.6, "cosine recall {r}");
}

#[test]
fn multiple_compute_nodes_share_one_memory_pool() {
    let data = gen::sift_like(1_000, 19).unwrap();
    let queries = gen::perturbed_queries(&data, 16, 0.02, 20).unwrap();
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let nodes: Vec<_> = (0..3)
        .map(|_| store.connect(SearchMode::Full).unwrap())
        .collect();
    std::thread::scope(|s| {
        for node in &nodes {
            s.spawn(|| {
                let (results, report) = node.query_batch(&queries, 5, 16).unwrap();
                assert_eq!(results.len(), 16);
                assert!(report.round_trips > 0);
            });
        }
    });
}
