//! Concurrency integration tests: the remote atomics that make the
//! overflow/insert path safe must hold up under real thread interleaving,
//! and concurrent query traffic must never corrupt results.

use std::collections::HashSet;
use std::sync::Arc;

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_repro::rdma_sim::{MemoryNode, NetworkModel, QueuePair};
use dhnsw_repro::vecsim::{gen, Dataset};

#[test]
fn remote_faa_is_atomic_across_queue_pairs() {
    let node = MemoryNode::new("m");
    let region = node.register(64).unwrap();
    let qps: Vec<Arc<QueuePair>> = (0..4)
        .map(|_| Arc::new(QueuePair::connect(&node, NetworkModel::connectx6())))
        .collect();
    let per_thread = 500u64;
    std::thread::scope(|s| {
        for qp in &qps {
            let qp = Arc::clone(qp);
            s.spawn(move || {
                for _ in 0..per_thread {
                    qp.faa(region.rkey(), 0, 1).unwrap();
                }
            });
        }
    });
    let probe = QueuePair::connect(&node, NetworkModel::connectx6());
    let final_value = u64::from_le_bytes(
        probe.read(region.rkey(), 0, 8).unwrap().try_into().unwrap(),
    );
    assert_eq!(final_value, 4 * per_thread);
}

#[test]
fn remote_cas_admits_exactly_one_winner() {
    let node = MemoryNode::new("m");
    let region = node.register(64).unwrap();
    let winners: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let node = Arc::clone(&node);
                s.spawn(move || {
                    let qp = QueuePair::connect(&node, NetworkModel::connectx6());
                    qp.cas(region.rkey(), 0, 0, t + 1).unwrap() == 0
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(winners.iter().filter(|&&w| w).count(), 1);
}

#[test]
fn concurrent_inserts_from_many_compute_nodes_get_unique_ids() {
    let data = gen::sift_like(600, 81).unwrap();
    // Plenty of overflow room so no insert fails.
    let cfg = DHnswConfig::small().with_overflow_slots(512);
    let store = Arc::new(VectorStore::build(data.clone(), &cfg).unwrap());

    let inserts_per_node = 40usize;
    let ids: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let store = Arc::clone(&store);
                let data = data.clone();
                s.spawn(move || {
                    let node = store.connect(SearchMode::Full).unwrap();
                    let stream =
                        gen::perturbed_queries(&data, inserts_per_node, 0.01, 900 + t).unwrap();
                    stream
                        .iter()
                        .map(|v| node.insert(v).unwrap())
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut all: Vec<u32> = ids.into_iter().flatten().collect();
    assert_eq!(all.len(), 4 * inserts_per_node);
    let unique: HashSet<u32> = all.iter().copied().collect();
    assert_eq!(unique.len(), all.len(), "duplicate global ids allocated");
    all.sort_unstable();
    // Dense allocation starting right after the base vectors.
    assert_eq!(all[0] as usize, data.len());
    assert_eq!(
        *all.last().unwrap() as usize,
        data.len() + all.len() - 1
    );
}

#[test]
fn concurrent_inserts_are_all_retrievable_afterwards() {
    let data = gen::sift_like(400, 82).unwrap();
    let cfg = DHnswConfig::small().with_overflow_slots(256);
    let store = Arc::new(VectorStore::build(data.clone(), &cfg).unwrap());

    let per_node = 15usize;
    let inserted: Vec<(u32, Vec<f32>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                let store = Arc::clone(&store);
                let data = data.clone();
                s.spawn(move || {
                    let node = store.connect(SearchMode::Full).unwrap();
                    let stream = gen::perturbed_queries(&data, per_node, 0.01, 700 + t).unwrap();
                    stream
                        .iter()
                        .map(|v| (node.insert(v).unwrap(), v.to_vec()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Routing is approximate: insert classifies with a beam of 1 while
    // queries route with the fan-out beam, so a small fraction of inserts
    // can land in a partition the query never probes (true of the paper's
    // system as well). Require a high hit rate, and exact distance on
    // every hit.
    let reader = store.connect(SearchMode::Full).unwrap();
    let mut found = 0usize;
    for (gid, v) in &inserted {
        let hit = reader.query(v, 1, 32).unwrap();
        if hit[0].id == *gid {
            assert!(hit[0].dist < 1e-6);
            found += 1;
        }
    }
    assert!(
        found * 5 >= inserted.len() * 4,
        "only {found}/{} concurrent inserts retrievable",
        inserted.len()
    );
}

#[test]
fn queries_and_inserts_interleave_safely() {
    let data = gen::sift_like(500, 83).unwrap();
    let store = Arc::new(
        VectorStore::build(data.clone(), &DHnswConfig::small().with_overflow_slots(256))
            .unwrap(),
    );
    let queries = gen::perturbed_queries(&data, 16, 0.03, 84).unwrap();

    std::thread::scope(|s| {
        // Two query threads sharing one compute node.
        let query_node = Arc::new(store.connect(SearchMode::Full).unwrap());
        for _ in 0..2 {
            let node = Arc::clone(&query_node);
            let queries = queries.clone();
            s.spawn(move || {
                for _ in 0..5 {
                    let (results, _) = node.query_batch(&queries, 5, 16).unwrap();
                    assert_eq!(results.len(), 16);
                    for r in &results {
                        assert_eq!(r.len(), 5);
                    }
                }
            });
        }
        // One insert thread on its own node.
        let store2 = Arc::clone(&store);
        let data2 = data.clone();
        s.spawn(move || {
            let node = store2.connect(SearchMode::Full).unwrap();
            let stream = gen::perturbed_queries(&data2, 30, 0.01, 85).unwrap();
            for v in stream.iter() {
                node.insert(v).unwrap();
            }
        });
    });
}

#[test]
fn shared_compute_node_handles_parallel_batches() {
    let data = gen::sift_like(700, 86).unwrap();
    let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
    let node = Arc::new(store.connect(SearchMode::Full).unwrap());

    let expected: Vec<Vec<Vec<dhnsw_repro::vecsim::Neighbor>>> = (0..3u64)
        .map(|t| {
            let queries = gen::perturbed_queries(&data, 8, 0.02, 200 + t).unwrap();
            let solo = store.connect(SearchMode::Full).unwrap();
            solo.query_batch(&queries, 5, 32).unwrap().0
        })
        .collect();

    let got: Vec<Vec<Vec<dhnsw_repro::vecsim::Neighbor>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                let node = Arc::clone(&node);
                let data = data.clone();
                s.spawn(move || {
                    let queries = gen::perturbed_queries(&data, 8, 0.02, 200 + t).unwrap();
                    node.query_batch(&queries, 5, 32).unwrap().0
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(got, expected, "concurrent batches corrupted results");
}

#[test]
fn async_verbs_drive_a_manual_cluster_fetch() {
    // The completion-queue API can implement the loader's doorbell fetch
    // by hand: post one read per cluster span, ring once, poll.
    let data = gen::sift_like(400, 87).unwrap();
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    let qp = QueuePair::connect(store.memory_node(), store.config().network());
    let dir = store.directory();

    let wanted: Vec<u32> = vec![0, 3, 5];
    for (i, &p) in wanted.iter().enumerate() {
        let loc = dir.location(p).unwrap();
        let (off, len) = loc.read_span();
        qp.post_read(i as u64, dhnsw_repro::rdma_sim::ReadReq::new(
            store.region().rkey(),
            off,
            len,
        ));
    }
    qp.ring_doorbell().unwrap();
    assert_eq!(qp.stats().round_trips(), 1, "3 clusters, one doorbell trip");

    let done = qp.poll_cq(8);
    assert_eq!(done.len(), 3);
    for (c, &p) in done.iter().zip(&wanted) {
        let loc = dir.location(p).unwrap();
        let buf = c.payload.as_ref().unwrap();
        let (cluster_bytes, overflow) = loc.split(buf).unwrap();
        let loaded =
            dhnsw_repro::dhnsw::cluster::LoadedCluster::from_remote(cluster_bytes, overflow)
                .unwrap();
        assert_eq!(loaded.partition(), p);
    }
}

#[test]
fn sharded_session_survives_concurrent_use() {
    let data = gen::sift_like(900, 88).unwrap();
    let store = Arc::new(
        dhnsw_repro::dhnsw::ShardedStore::build(&data, &DHnswConfig::small(), 3).unwrap(),
    );
    let session = Arc::new(store.connect(SearchMode::Full).unwrap());
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let session = Arc::clone(&session);
            let data = data.clone();
            s.spawn(move || {
                let queries = gen::perturbed_queries(&data, 6, 0.02, 300 + t).unwrap();
                let (results, _) = session.query_batch(&queries, 5, 32).unwrap();
                assert_eq!(results.len(), 6);
            });
        }
    });
    let _ = Dataset::new(1);
}
