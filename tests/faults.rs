//! Fault-injection regression tests: seeded verb-drop sweeps against the
//! substrate retransmission budget and the engine's read-retry layer.
//!
//! The contract under test: realistic fault rates are absorbed
//! transparently (identical results, no degradation, no corruption);
//! when retransmissions are taken away entirely, a degradation-enabled
//! session still answers every query from whatever arrived, with honest
//! per-query coverage accounting.

use std::sync::Arc;

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, Telemetry, VectorStore};
use dhnsw_repro::vecsim::gen;

#[test]
fn seeded_fault_sweep_is_absorbed_transparently() {
    let data = gen::sift_like(600, 21).unwrap();
    let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
    let queries = gen::perturbed_queries(&data, 16, 0.02, 22).unwrap();
    let clean = store.connect(SearchMode::Full).unwrap();
    let (expected, _) = clean.query_batch(&queries, 5, 32).unwrap();

    let mut total_faults = 0u64;
    for (i, rate) in [0.05f64, 0.10, 0.15].into_iter().enumerate() {
        let telemetry = Arc::new(Telemetry::new());
        let node = store
            .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
            .unwrap();
        node.queue_pair().set_fault_rate(rate, 0xFA17 + i as u64);
        // Many rounds with a cold cache each time: doorbell batching
        // collapses a whole load round into a couple of verbs, so it
        // takes repetition before a 5% drop rate reliably fires.
        for round in 0..20 {
            node.drop_cache();
            let (got, report) = node.query_batch(&queries, 5, 32).unwrap();

            // The default retransmission budget absorbs every drop:
            // results identical, nothing degraded, nothing corrupt.
            assert_eq!(got, expected, "rate {rate} round {round}: results changed");
            assert_eq!(report.degraded_queries, 0, "rate {rate}");
            assert!(report.coverage.is_empty(), "rate {rate}");
        }
        let faults = node.queue_pair().stats().faults();
        total_faults += faults;
        // The substrate fault counter flows into telemetry verbatim.
        let prom = telemetry.render_prometheus();
        assert!(
            prom.contains(&format!("dhnsw_rdma_faults_total {faults}")),
            "rate {rate}: fault counter disagrees with substrate stats"
        );
    }
    // A seeded sweep this long must have dropped something somewhere.
    assert!(total_faults > 0, "no faults fired across the whole sweep");
}

#[test]
fn degradation_accounts_coverage_honestly_without_retransmissions() {
    let data = gen::sift_like(600, 23).unwrap();
    let cfg = DHnswConfig::small()
        .with_degraded_ok(true)
        .with_read_retry_limit(3);
    let store = VectorStore::build(data.clone(), &cfg).unwrap();
    let queries = gen::perturbed_queries(&data, 16, 0.02, 24).unwrap();

    // No retransmissions at all: only the engine retry layer stands.
    let telemetry = Arc::new(Telemetry::new());
    let node = store
        .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
        .unwrap();
    node.queue_pair().set_retry_limit(0);
    node.queue_pair().set_fault_rate(0.5, 0xD16E);

    let mut total_degraded = 0usize;
    let mut total_retries = 0u64;
    for _ in 0..8 {
        node.drop_cache();
        let (results, report) = node.query_batch(&queries, 5, 32).unwrap();
        assert_eq!(results.len(), queries.len());
        // Coverage bookkeeping: values in [0, 1], degraded count matches
        // the sub-unit entries, and the compact empty form only stands
        // when nothing degraded.
        if report.coverage.is_empty() {
            assert_eq!(report.degraded_queries, 0);
        } else {
            assert_eq!(report.coverage.len(), queries.len());
            assert!(report.coverage.iter().all(|&c| (0.0..=1.0).contains(&c)));
            assert_eq!(
                report.degraded_queries,
                report.coverage.iter().filter(|&&c| c < 1.0).count()
            );
        }
        total_degraded += report.degraded_queries;
        total_retries += report.read_retries;
    }
    // At a 50% drop rate with zero retransmissions, the engine layer
    // must have retried, and the injected faults must be visible.
    assert!(total_retries > 0, "engine retries never fired");
    assert!(node.queue_pair().stats().faults() > 0);
    // Telemetry totals agree with the per-batch reports.
    let prom = telemetry.render_prometheus();
    assert!(
        prom.contains(&format!(
            "dhnsw_read_retries_total{{mode=\"full\"}} {total_retries}"
        )),
        "retry counter disagrees with report totals"
    );
    assert!(
        prom.contains(&format!(
            "dhnsw_degraded_queries_total{{mode=\"full\"}} {total_degraded}"
        )),
        "degraded counter disagrees with report totals"
    );
}
