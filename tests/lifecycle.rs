//! Cross-feature lifecycle tests: the full life of a store — build,
//! serve, insert, delete, snapshot, restore, rebuild — and behaviour on a
//! lossy fabric.

use dhnsw_repro::dhnsw::{snapshot, DHnswConfig, Error, SearchMode, VectorStore};
use dhnsw_repro::vecsim::gen;

#[test]
fn full_lifecycle_preserves_answers_at_every_stage() {
    // Build.
    let data = gen::sift_like(800, 91).unwrap();
    let cfg = DHnswConfig::small().with_overflow_slots(64);
    let store = VectorStore::build(data.clone(), &cfg).unwrap();
    let node = store.connect(SearchMode::Full).unwrap();

    // Serve + mutate: insert five, delete one base vector.
    let inserts = gen::perturbed_queries(&data, 5, 0.01, 92).unwrap();
    let gids: Vec<u32> = inserts.iter().map(|v| node.insert(v).unwrap()).collect();
    let del_target = data.get(13).to_vec();
    let victim = node.query(&del_target, 1, 48).unwrap()[0].id;
    node.delete(&del_target, victim).unwrap();

    // Snapshot and restore: mutations survive the round trip.
    let mut blob = Vec::new();
    snapshot::write_snapshot(&store, &mut blob).unwrap();
    let restored = snapshot::read_snapshot(&blob[..], &cfg).unwrap();
    let restored_node = restored.connect(SearchMode::Full).unwrap();
    let mut found = 0;
    for (i, v) in inserts.iter().enumerate() {
        if restored_node.query(v, 1, 48).unwrap()[0].id == gids[i] {
            found += 1;
        }
    }
    assert!(found >= 4, "restored store lost inserts: {found}/5");
    assert!(restored_node
        .query(&del_target, 3, 48)
        .unwrap()
        .iter()
        .all(|n| n.id != victim));

    // Rebuild the restored store: overflow folds in, deletion permanent.
    let rebuilt = restored.rebuild().unwrap();
    assert_eq!(rebuilt.base_len(), data.len() + 5 - 1);
    let final_node = rebuilt.connect(SearchMode::Full).unwrap();
    let mut refound = 0;
    for (i, v) in inserts.iter().enumerate() {
        if final_node.query(v, 1, 48).unwrap()[0].id == gids[i] {
            refound += 1;
        }
    }
    assert!(refound >= 4, "rebuilt store lost inserts: {refound}/5");
    assert!(final_node
        .query(&del_target, 3, 48)
        .unwrap()
        .iter()
        .all(|n| n.id != victim));
}

#[test]
fn snapshot_of_rebuilt_store_round_trips() {
    let data = gen::sift_like(400, 93).unwrap();
    let cfg = DHnswConfig::small();
    let store = VectorStore::build(data.clone(), &cfg).unwrap();
    let node = store.connect(SearchMode::Full).unwrap();
    node.insert(data.get(0)).unwrap();
    let rebuilt = store.rebuild().unwrap();
    let mut blob = Vec::new();
    snapshot::write_snapshot(&rebuilt, &mut blob).unwrap();
    let restored = snapshot::read_snapshot(&blob[..], &cfg).unwrap();
    assert_eq!(restored.base_len(), rebuilt.base_len());
    assert_eq!(restored.directory().epoch(), 1);
}

#[test]
fn queries_survive_a_lossy_fabric_transparently() {
    let data = gen::sift_like(700, 94).unwrap();
    let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
    let queries = gen::perturbed_queries(&data, 24, 0.03, 95).unwrap();

    // Reference run on a clean fabric.
    let clean = store.connect(SearchMode::Full).unwrap();
    let (expected, clean_report) = clean.query_batch(&queries, 5, 32).unwrap();

    // Lossy run: the next several attempts drop deterministically; RC
    // retransmission absorbs them.
    let lossy = store.connect(SearchMode::Full).unwrap();
    lossy.queue_pair().fail_next(5);
    let (got, lossy_report) = lossy.query_batch(&queries, 5, 32).unwrap();

    assert_eq!(got, expected, "faults must never change results");
    assert!(lossy.queue_pair().stats().faults() > 0, "no faults fired");
    assert!(
        lossy_report.breakdown.network_us > clean_report.breakdown.network_us,
        "retransmission timeouts must cost time: {} vs {}",
        lossy_report.breakdown.network_us,
        clean_report.breakdown.network_us
    );
}

#[test]
fn inserts_survive_a_lossy_fabric() {
    let data = gen::sift_like(400, 96).unwrap();
    let store = VectorStore::build(
        data.clone(),
        &DHnswConfig::small().with_overflow_slots(64),
    )
    .unwrap();
    let node = store.connect(SearchMode::Full).unwrap();
    node.queue_pair().set_fault_rate(0.2, 777);

    let stream = gen::perturbed_queries(&data, 20, 0.01, 97).unwrap();
    let mut gids = Vec::new();
    for v in stream.iter() {
        gids.push(node.insert(v).unwrap());
    }
    assert!(node.queue_pair().stats().faults() > 0);
    // A clean reader sees every insert.
    let reader = store.connect(SearchMode::Full).unwrap();
    let mut found = 0;
    for (i, v) in stream.iter().enumerate() {
        if reader.query(v, 1, 32).unwrap()[0].id == gids[i] {
            found += 1;
        }
    }
    assert!(found >= 16, "only {found}/20 inserts survived the lossy run");
}

#[test]
fn a_dead_fabric_surfaces_errors_instead_of_hanging() {
    let data = gen::sift_like(300, 98).unwrap();
    let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
    let node = store.connect(SearchMode::Full).unwrap();
    // Everything drops and the budget is tiny: the query must error out
    // once the engine's own retry layer gives up (degradation is not
    // enabled here, so a partial answer is not acceptable).
    node.queue_pair().set_retry_limit(2);
    node.queue_pair().set_fault_rate(1.0, 5);
    let queries = gen::perturbed_queries(&data, 4, 0.03, 99).unwrap();
    let err = node.query_batch(&queries, 5, 32).unwrap_err();
    assert!(matches!(err, Error::ReadRetriesExhausted { .. }), "{err}");
}

#[test]
fn rebuild_after_heavy_churn_matches_ground_truth() {
    use dhnsw_repro::vecsim::{ground_truth, recall, Metric};
    let data = gen::sift_like(1_000, 100).unwrap();
    let cfg = DHnswConfig::small().with_overflow_slots(128);
    let store = VectorStore::build(data.clone(), &cfg).unwrap();
    let node = store.connect(SearchMode::Full).unwrap();

    // Churn: 50 inserts.
    let inserts = gen::perturbed_queries(&data, 50, 0.02, 101).unwrap();
    for v in inserts.iter() {
        node.insert(v).unwrap();
    }

    // Rebuild and verify recall against exact ground truth over the full
    // (base + inserted) corpus.
    let rebuilt = store.rebuild().unwrap();
    let mut full_corpus = data.clone();
    for v in inserts.iter() {
        full_corpus.push(v).unwrap();
    }
    let queries = gen::perturbed_queries(&full_corpus, 40, 0.02, 102).unwrap();
    let truth = ground_truth::exact_batch(&full_corpus, &queries, 5, Metric::L2);
    let fresh = rebuilt.connect(SearchMode::Full).unwrap();
    let (results, _) = fresh.query_batch(&queries, 5, 48).unwrap();
    let ids: Vec<Vec<u32>> = results
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect();
    let r = recall::mean_recall(&ids, &truth);
    assert!(r > 0.7, "post-churn rebuild recall {r}");
}
