//! Seeded concurrency stress: multiple reader threads query one store
//! while a writer thread churns inserts and deletes against it, all
//! under substrate fault injection. Every reader batch must decode
//! cleanly (no torn record survives the commit-marker / version
//! protocol), must never answer from a stale cluster version, and must
//! match a quiesced control run exactly — the writer's transient
//! vectors are placed far outside the data's hull so no consistent
//! snapshot can rank them.
//!
//! Iteration count comes from `DHNSW_STRESS_ITERS` (default 4 so plain
//! `cargo test` stays quick); CI runs the 100-iteration gate via
//! `scripts/check.sh`.

use std::sync::Arc;

use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_repro::vecsim::gen;

fn stress_iters() -> u64 {
    std::env::var("DHNSW_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Vectors far outside the generated data's hull: even when a reader
/// observes one mid-flight (inserted, not yet deleted), it cannot
/// displace a true neighbour from any query's top-k.
fn far_vectors(dim: usize, count: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..dim)
                .map(|j| 4_000.0 + ((seed as usize + i * dim + j) % 97) as f32)
                .collect()
        })
        .collect()
}

#[test]
fn readers_stay_consistent_under_concurrent_writes_and_faults() {
    for iter in 0..stress_iters() {
        run_iteration(0xD15C0 + iter);
    }
}

fn run_iteration(seed: u64) {
    let n = 200usize;
    let data = gen::sift_like(n, seed).unwrap();
    // Generous engine retry budget: the writer's version bumps can
    // collide with a reader's optimistic snapshot several times in a
    // row, and that must surface as retries, not failures.
    let cfg = DHnswConfig::small()
        .with_overflow_slots(128)
        .with_read_retry_limit(32);
    let store = Arc::new(VectorStore::build(data.clone(), &cfg).unwrap());
    let queries = gen::perturbed_queries(&data, 8, 0.02, seed ^ 0x9E37).unwrap();

    // Quiesced control: what every consistent snapshot must answer.
    let control = {
        let node = store.connect(SearchMode::Full).unwrap();
        node.query_batch(&queries, 5, 32).unwrap().0
    };

    let dim = data.dim();
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let store = Arc::clone(&store);
            let queries = queries.clone();
            let control = control.clone();
            s.spawn(move || {
                let node = store.connect(SearchMode::Full).unwrap();
                node.queue_pair().set_fault_rate(0.05, seed ^ (0xFA + t));
                for round in 0..3 {
                    // An unwrap here is itself an assertion: a torn
                    // overflow slot or half-written cluster would fail
                    // decode, and exhausted retries would error out.
                    let (results, report) = node.query_batch(&queries, 5, 32).unwrap();
                    assert_eq!(
                        results, control,
                        "reader {t} round {round} diverged (seed {seed})"
                    );
                    assert_eq!(report.degraded_queries, 0, "seed {seed}");
                }
            });
        }
        let store_w = Arc::clone(&store);
        s.spawn(move || {
            let node = store_w.connect(SearchMode::Full).unwrap();
            for (i, v) in far_vectors(dim, 12, seed).iter().enumerate() {
                let id = node.insert(v).unwrap();
                if i % 3 == 0 {
                    std::thread::yield_now();
                }
                node.delete(v, id).unwrap();
            }
        });
    });

    // Quiesced rerun on a fresh connection: the writer net-effect is
    // zero (every insert tombstoned), so results must match the control
    // byte for byte.
    let node = store.connect(SearchMode::Full).unwrap();
    let (results, _) = node.query_batch(&queries, 5, 32).unwrap();
    assert_eq!(results, control, "post-stress rerun diverged (seed {seed})");
}

#[test]
fn pipelined_readers_survive_the_same_stress() {
    // One shorter pass with the pipelined executor + prefetcher armed:
    // pinning across stages and background warming must not change any
    // of the stress invariants.
    let iters = stress_iters().div_ceil(4);
    for iter in 0..iters {
        run_pipelined_iteration(0xB00 + iter);
    }
}

fn run_pipelined_iteration(seed: u64) {
    let n = 200usize;
    let data = gen::sift_like(n, seed).unwrap();
    let cfg = DHnswConfig::small()
        .with_overflow_slots(128)
        .with_read_retry_limit(32)
        .with_pipeline_depth(3)
        .with_prefetch_budget_bytes(1 << 20);
    let store = Arc::new(VectorStore::build(data.clone(), &cfg).unwrap());
    let queries = gen::perturbed_queries(&data, 9, 0.02, seed ^ 0x517E).unwrap();
    let control = {
        let node = store.connect(SearchMode::Full).unwrap();
        node.query_batch(&queries, 5, 32).unwrap().0
    };
    let dim = data.dim();
    std::thread::scope(|s| {
        let store_r = Arc::clone(&store);
        let queries_r = queries.clone();
        let control_r = control.clone();
        s.spawn(move || {
            let node = store_r.connect(SearchMode::Full).unwrap();
            node.queue_pair().set_fault_rate(0.05, seed ^ 0xFEED);
            for round in 0..3 {
                let (results, _) = node.query_batch(&queries_r, 5, 32).unwrap();
                assert_eq!(
                    results, control_r,
                    "pipelined reader round {round} diverged (seed {seed})"
                );
            }
        });
        let store_w = Arc::clone(&store);
        s.spawn(move || {
            let node = store_w.connect(SearchMode::Full).unwrap();
            for v in far_vectors(dim, 8, seed) {
                let id = node.insert(&v).unwrap();
                node.delete(&v, id).unwrap();
            }
        });
    });
    let node = store.connect(SearchMode::Full).unwrap();
    let (results, _) = node.query_batch(&queries, 5, 32).unwrap();
    assert_eq!(results, control, "pipelined post-stress rerun diverged (seed {seed})");
}
