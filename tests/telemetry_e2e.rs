//! End-to-end telemetry: the metrics registry and per-query traces must
//! agree with what the engine already reports through [`BatchReport`]
//! and the substrate's [`TransferStats`].

use std::sync::Arc;

use dhnsw_repro::dhnsw::{
    DHnswConfig, SearchMode, ShardedStore, Telemetry, VectorStore,
};
use dhnsw_repro::vecsim::{gen, Dataset};

fn workload() -> (VectorStore, Dataset) {
    let data = gen::sift_like(2_000, 11).unwrap();
    let queries = gen::perturbed_queries(&data, 40, 0.02, 12).unwrap();
    let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
    (store, queries)
}

/// Extracts the value of a Prometheus sample line, e.g.
/// `metric_value(&text, "dhnsw_queries_total{mode=\"full\"}")`.
fn metric_value(text: &str, series: &str) -> f64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(series) {
            if let Some(v) = rest.split_whitespace().next() {
                return v.parse().unwrap();
            }
        }
    }
    panic!("series {series} not found in:\n{text}");
}

#[test]
fn tracing_is_off_by_default_and_records_nothing() {
    let (store, queries) = workload();
    let telemetry = Arc::new(Telemetry::new());
    let node = store
        .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
        .unwrap();

    node.query_batch(&queries, 10, 32).unwrap();
    assert!(telemetry.traces().is_empty(), "tracing must be opt-in");

    telemetry.traces().set_enabled(true);
    node.query_batch(&queries, 10, 32).unwrap();
    assert_eq!(telemetry.traces().len(), 1);

    telemetry.traces().set_enabled(false);
    node.query_batch(&queries, 10, 32).unwrap();
    assert_eq!(telemetry.traces().len(), 1, "disable must stop recording");
}

#[test]
fn query_trace_agrees_with_batch_report() {
    let (store, queries) = workload();
    let telemetry = Arc::new(Telemetry::new());
    telemetry.traces().set_enabled(true);
    let node = store
        .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
        .unwrap();

    let (_, report) = node.query_batch(&queries, 10, 32).unwrap();
    let traces = telemetry.traces().recent();
    assert_eq!(traces.len(), 1);
    let t = traces[0];

    assert_eq!(t.mode, "full");
    assert_eq!(t.queries as usize, report.queries);
    assert_eq!((t.k, t.ef), (10, 32));
    assert_eq!(t.raw_cluster_demand as usize, report.raw_cluster_demand);
    assert_eq!(t.unique_clusters as usize, report.unique_clusters);
    assert_eq!(t.cache_hits as usize, report.cache_hits);
    assert_eq!(t.clusters_loaded as usize, report.clusters_loaded);
    assert_eq!(t.round_trips, report.round_trips);
    assert_eq!(t.bytes_read, report.bytes_read);
    // The virtual network time is part of the trace's stage breakdown.
    assert!((t.network_us - report.breakdown.network_us).abs() < 1e-9);
    assert!(t.total_us > 0.0);
    // Doorbell batching on: every loaded cluster crossed in few rings.
    assert!(t.doorbell_batches as u64 <= t.round_trips);
}

#[test]
fn prometheus_counters_agree_with_reports() {
    let (store, queries) = workload();
    let telemetry = Arc::new(Telemetry::new());
    let node = store
        .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
        .unwrap();

    let (_, r1) = node.query_batch(&queries, 10, 32).unwrap();
    let (_, r2) = node.query_batch(&queries, 10, 32).unwrap();
    let text = telemetry.render_prometheus();

    assert_eq!(
        metric_value(&text, "dhnsw_queries_total{mode=\"full\"}") as usize,
        r1.queries + r2.queries
    );
    assert_eq!(
        metric_value(&text, "dhnsw_query_batches_total{mode=\"full\"}") as u64,
        2
    );
    assert_eq!(
        metric_value(&text, "dhnsw_rdma_round_trips_total") as u64,
        r1.round_trips + r2.round_trips
    );
    assert_eq!(
        metric_value(&text, "dhnsw_rdma_bytes_read_total") as u64,
        r1.bytes_read + r2.bytes_read
    );
    assert_eq!(
        metric_value(&text, "dhnsw_clusters_loaded_total{mode=\"full\"}") as usize,
        r1.clusters_loaded + r2.clusters_loaded
    );
    assert_eq!(
        metric_value(&text, "dhnsw_cluster_cache_hits_total{mode=\"full\"}") as usize,
        r1.cache_hits + r2.cache_hits
    );
    // The second identical batch must hit the cluster cache.
    assert!(r2.cache_hits > 0);
    assert!(metric_value(&text, "dhnsw_cache_hits_total") > 0.0);

    // Histogram invariants: latency count equals queries; the doorbell
    // batch-size histogram counts exactly the doorbell rings.
    assert_eq!(
        metric_value(&text, "dhnsw_query_latency_us_count{mode=\"full\"}") as usize,
        r1.queries + r2.queries
    );
    assert_eq!(
        metric_value(&text, "dhnsw_doorbell_batch_size_count"),
        metric_value(&text, "dhnsw_rdma_doorbell_batches_total")
    );

    // JSON snapshot carries the quantiles the paper-style reports need.
    let json = telemetry.snapshot_json();
    for needle in ["\"p50\"", "\"p95\"", "\"p99\"", "dhnsw_query_latency_us"] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}

#[test]
fn mutation_counters_track_insert_and_delete() {
    let (store, queries) = workload();
    let telemetry = Arc::new(Telemetry::new());
    let node = store
        .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
        .unwrap();

    let v = queries.get(0).to_vec();
    let id = node.insert(&v).unwrap();
    let batch = Dataset::from_rows(&[queries.get(1), queries.get(2)]).unwrap();
    let ok = node.insert_batch(&batch).unwrap();
    assert!(ok.iter().all(|r| r.is_ok()));
    node.delete(&v, id).unwrap();

    let text = telemetry.render_prometheus();
    assert_eq!(metric_value(&text, "dhnsw_inserts_total") as u64, 3);
    assert_eq!(metric_value(&text, "dhnsw_deletes_total") as u64, 1);
    assert_eq!(metric_value(&text, "dhnsw_insert_overflow_total") as u64, 0);
    // Inserts and deletes move bytes and atomics through the substrate.
    assert!(metric_value(&text, "dhnsw_rdma_atomics_total") > 0.0);
    assert!(metric_value(&text, "dhnsw_rdma_bytes_written_total") > 0.0);
}

#[test]
fn sharded_sessions_expose_per_shard_counters() {
    let data = gen::sift_like(900, 21).unwrap();
    let queries = gen::perturbed_queries(&data, 15, 0.02, 22).unwrap();
    let sharded = ShardedStore::build(&data, &DHnswConfig::small(), 3).unwrap();
    let telemetry = Arc::new(Telemetry::new());
    let session = sharded
        .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
        .unwrap();

    session.query_batch(&queries, 5, 32).unwrap();
    session.insert(data.get(0)).unwrap();

    let text = telemetry.render_prometheus();
    for shard in 0..3 {
        let series = format!("dhnsw_shard_queries_total{{shard=\"{shard}\"}}");
        assert_eq!(metric_value(&text, &series) as usize, queries.len());
    }
    let inserts: f64 = (0..3)
        .map(|s| metric_value(&text, &format!("dhnsw_shard_inserts_total{{shard=\"{s}\"}}")))
        .sum();
    assert_eq!(inserts as u64, 1);
    // Per-node engine counters aggregate across the three shards.
    assert_eq!(
        metric_value(&text, "dhnsw_queries_total{mode=\"full\"}") as usize,
        3 * queries.len()
    );
}
