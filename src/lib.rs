//! Workspace umbrella for the d-HNSW reproduction.
//!
//! Re-exports the four member crates so the root-level integration tests
//! and examples can exercise the whole stack through one dependency:
//!
//! - [`vecsim`] — vectors, datasets, ground truth, recall.
//! - [`hnsw`] — the from-scratch HNSW index.
//! - [`rdma_sim`] — the simulated RDMA disaggregated-memory fabric.
//! - [`dhnsw`] — the paper's system: meta-HNSW caching, the grouped
//!   RDMA-friendly layout, and query-aware batched loading.
//!
//! See `README.md` for the project overview and `DESIGN.md` for the
//! paper-to-code map.
//!
//! # Example
//!
//! ```rust
//! use dhnsw_repro::dhnsw::{DHnswConfig, SearchMode, VectorStore};
//! use dhnsw_repro::vecsim::gen;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = gen::sift_like(1_000, 1)?;
//! let store = VectorStore::build(data, &DHnswConfig::small())?;
//! let node = store.connect(SearchMode::Full)?;
//! let hits = node.query(&vec![128.0; 128], 5, 32)?;
//! assert_eq!(hits.len(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use dhnsw;
pub use hnsw;
pub use rdma_sim;
pub use vecsim;
